#include "core/policy.h"

#include "util/rng.h"

namespace oak::core {

bool Policy::in_holdback(const std::string& user_id) const {
  if (holdback_fraction <= 0.0) return false;
  if (holdback_fraction >= 1.0) return true;
  // Stable assignment: the same user lands on the same side forever.
  return double(util::stable_hash(user_id) % 10'000) <
         holdback_fraction * 10'000.0;
}

bool Policy::applies_to(const std::string& client_ip_text) const {
  if (!client_filter) return true;
  auto ip = net::IpAddr::parse(client_ip_text);
  if (!ip) return false;  // unknown clients stay on the default page
  return client_filter->contains(*ip);
}

}  // namespace oak::core
