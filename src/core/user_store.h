// Tiered per-shard user-state store (oak::core::TieredUserStore).
//
// The north star is millions of users, but every per-user byte — violator
// histories, active/pending rule state, PLT accumulators — used to live
// forever in an unbounded ordered map per shard, so node memory grew
// linearly with population. This store converts that to O(hot-set):
//
//  * Hot tier — a dense slot array of UserProfile payloads with the store
//    bookkeeping split struct-of-arrays style into parallel byte/double
//    vectors (clock reference bits, liveness, last-touch stamps), so the
//    eviction sweep walks a few contiguous bytes per slot instead of
//    dragging whole ~200-byte profiles through the cache. Lookup is one
//    probe of an open-addressed uid index (util::FlatHashMap, which grew
//    backward-shift erase for exactly this use).
//
//  * Eviction — an intrusive CLOCK (second-chance) hand over the slot
//    array: every access sets the slot's reference bit, the hand clears
//    bits until it finds a cold one, and that profile is demoted. CLOCK
//    approximates LRU with one byte per slot and no list splicing.
//
//  * Cold tier — demoted profiles are serialized (bit-exact binary codec:
//    varints + IEEE-754 bit patterns, the util/framing.h vocabulary the
//    durability journal already uses) and appended as checksummed frames to
//    a per-shard spill file, bucket-chained by uid hash: each record
//    carries the file offset of the previous record in its bucket, and an
//    in-memory bucket-head array (fixed size, independent of population) is
//    the only per-shard index. A Bloom filter over demoted uids makes the
//    "never seen cold" miss free; a real fault-in walks the bucket chain
//    with pread. In-memory cost per cold user is therefore ~a filter bit,
//    not an index entry — the property the bounded-memory soak gate
//    (bench/load_userscale) measures.
//
//  * Fault-in — the next lookup of a demoted user decodes the newest cold
//    record back into a hot slot, byte-identical to never having been
//    evicted (pinned by the tiering parity tests). Records are logged, so
//    stale versions accumulate until compact_cold() rewrites live records
//    only (triggered automatically on garbage ratio, and by the durability
//    snapshot cut in ShardedOakServer::compact()).
//
// The spill file is a cache, not a durability artifact: it is truncated at
// construction and rebuilt by use. Crash recovery replays the WAL through
// the same deterministic code, which re-demotes idle users as it goes —
// the recovered export_state() stays byte-identical (durability fuzz).
//
// Not thread-safe; one store per shard behind the shard lock, like every
// other shard-local structure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/flat_map.h"

namespace oak::core {

// One activated rule inside a user profile.
struct ActiveRule {
  int rule_id = 0;
  std::size_t alternative_index = 0;
  double activated_at = 0.0;
  double expires_at = 0.0;  // 0 = never
  // MAD distance of the violator that caused activation — the yardstick the
  // history mechanism compares the alternative against.
  double violation_distance = 0.0;
  std::string violator_ip;
};

// Per-(user, rule) racing accumulator (core/policy.h, racing strategy):
// which cohort the user raced in, and the post-activation PLT mass their
// reports contributed. Lives in the profile — not the engine — so the
// engine's per-rule race aggregates are pure derived state, rebuilt by
// folding profiles after snapshot import or WAL recovery.
struct RaceStat {
  int cohort = 0;  // 0 or 1: which alternative this user races
  double plt_sum = 0.0;
  std::uint64_t count = 0;
};

struct UserProfile {
  std::string user_id;
  std::string client_ip;
  // Per-user rule state. Flat sorted containers (util/flat_map.h): a user
  // holds a handful of entries, touched on every report — contiguous
  // storage beats one heap node per entry, and sorted iteration keeps
  // snapshot/export byte-compatibility with the std::map originals.
  util::SmallFlatMap<int, ActiveRule> active;       // keyed by rule id
  util::SmallFlatMap<int, int> pending_violations;  // toward min_violations
  util::SmallFlatMap<int, std::size_t> next_alternative;
  util::SmallFlatSet<int> banned;  // never re-activate (allow_reactivation=false)
  // Racing cohort accumulators; persists after deactivation (like banned)
  // so the derived aggregates survive export/import byte-identically.
  util::SmallFlatMap<int, RaceStat> race;
  // Hysteresis: rule may not re-arm for this user before this time.
  util::SmallFlatMap<int, double> cooldown_until;
  std::size_t reports_received = 0;
  std::size_t pages_served = 0;
  // Rolling page-load-time statistics from this user's reports; the
  // treated-vs-holdback comparison in SiteAnalytics measures Oak's lift.
  double plt_sum_s = 0.0;
  std::size_t plt_count = 0;
  bool holdback = false;

  double mean_plt_s() const {
    return plt_count == 0 ? 0.0 : plt_sum_s / double(plt_count);
  }
};

// Bit-exact binary profile codec (shared with tests): round-tripping
// through encode/decode reproduces every field including IEEE-754 double
// bit patterns — the "byte-identical export after eviction" contract does
// not survive a lossy decimal round-trip.
void encode_profile(const UserProfile& p, std::string& out);
bool decode_profile(std::string_view in, UserProfile& out);

struct UserStoreConfig {
  // Hot slots per store (per shard). 0 = untiered: every profile stays hot
  // and no spill file is opened — the pre-tiering behavior and the default.
  std::size_t hot_capacity = 0;
  // When > 0, demote_idle(now) evicts users untouched for this long even
  // with hot slots to spare (operators reclaim memory from abandoned
  // cookies without waiting for capacity pressure).
  double idle_after_s = 0.0;
  // Directory for the spill file. Empty: an anonymous unlinked temp file
  // (auto-reclaimed on process exit, the right default for a cache).
  std::string spill_dir;
  // Explicit spill file path; overrides spill_dir. ShardedOakServer sets
  // this per shard ("<spill_dir>/cold-<i>.dat") so shards never share one.
  std::string cold_file;
  // Bucket-head count for the cold file's hash chains (rounded up to a
  // power of two). Fixed memory: 8 bytes per bucket, regardless of
  // population; chains average cold_count / cold_buckets records.
  std::size_t cold_buckets = 1 << 14;
  // Bloom-filter size in bits. 0 = auto: rebuilt at 16 bits per live cold
  // user on every compaction — the filter then grows with the population
  // (~2 bytes per cold user of RAM). Setting it pins the filter to a fixed
  // allocation made at construction, so cold-tier metadata memory is
  // constant no matter how far the population grows; provision ~16 bits
  // per expected cold user (see the sizing worksheet in docs/OPERATIONS.md).
  std::uint64_t bloom_bits = 0;
};

struct UserStoreStats {
  std::uint64_t demotions = 0;          // hot → cold serializations
  std::uint64_t faultins = 0;           // cold → hot restorations
  std::uint64_t cold_compactions = 0;   // spill-file rewrites
};

// Bloom filter over demoted uid hashes: the negative cache that makes
// "fresh user, never demoted" lookups skip the chain walk entirely.
// Rebuilt (and re-sized to the live cold population) at each compaction.
class ColdBloom {
 public:
  void reset(std::uint64_t bits);  // rounded up to a power of two
  void clear();
  void insert(std::uint64_t h);
  bool maybe(std::uint64_t h) const;
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t bit_count() const { return words_.size() * 64; }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t inserts_ = 0;
};

class TieredUserStore {
 public:
  explicit TieredUserStore(UserStoreConfig cfg = {});
  ~TieredUserStore();
  TieredUserStore(const TieredUserStore&) = delete;
  TieredUserStore& operator=(const TieredUserStore&) = delete;

  bool tiered() const { return cfg_.hot_capacity > 0; }
  std::size_t size() const { return hot_count_ + cold_count_; }
  std::size_t hot_count() const { return hot_count_; }
  std::size_t cold_count() const { return cold_count_; }
  const UserStoreStats& stats() const { return stats_; }
  std::uint64_t cold_file_bytes() const { return file_bytes_; }
  std::uint64_t cold_live_bytes() const { return cold_live_bytes_; }

  // Lookup with transparent fault-in; nullptr when the uid was never seen.
  // `touch` feeds the clock/idle machinery (introspection passes false so
  // audits don't rejuvenate idle users). The returned pointer is valid
  // until the next store mutation (create/fault-in/demote/clear) — callers
  // must not hold it across requests.
  UserProfile* find(const std::string& uid, double now, bool touch);
  // Find-or-create. A created profile has user_id set to `uid` and is hot.
  UserProfile& get_or_create(const std::string& uid, double now);

  // Visit every profile — hot and cold — in ascending uid order (the
  // std::map iteration order the snapshot/export format pins). Cold
  // profiles are materialized transiently, without promotion.
  void for_each_sorted(
      const std::function<void(const UserProfile&)>& fn) const;
  // Mutating sweep in the same order (rule retirement). The callback
  // returns whether it changed the profile; changed cold profiles are
  // re-serialized in place of their old record.
  void for_each_sorted_mut(const std::function<bool(UserProfile&)>& fn);

  // Drop every profile and truncate the spill file (import_state rebuild).
  void clear();
  // Evict users untouched since now - idle_after_s. No-op unless tiered
  // and idle_after_s > 0. Returns the number demoted.
  std::size_t demote_idle(double now);
  // Force one CLOCK eviction (tests and capacity experiments). Returns the
  // number demoted (0 when the hot tier is empty or the store untiered).
  std::size_t demote_lru();
  // Rewrite the spill file keeping only the newest record per cold uid,
  // resize the bucket array and Bloom filter to the live population.
  void compact_cold();

 private:
  struct ColdRecord {
    std::uint64_t prev_plus1 = 0;   // offset+1 of the next-older record, 0 = end
    std::string_view uid;           // views into read_buf_
    std::string_view blob;
    std::uint64_t framed_bytes = 0; // on-disk frame size
  };

  void open_cold_file_();
  std::uint32_t alloc_slot_(double now);
  std::uint32_t evict_one_();
  void demote_slot_(std::uint32_t slot);
  UserProfile* fault_in_(const std::string& uid, double now, bool touch);
  // Frames [prev][uid][blob] and appends it at file_bytes_, linking the
  // bucket chain. Returns the framed size.
  std::uint64_t append_cold_(std::string_view uid, std::string_view blob);
  bool read_record_(std::uint64_t offset, ColdRecord& out) const;
  // Newest live record per cold uid: (uid, file offset). Skips hot uids.
  std::vector<std::pair<std::string, std::uint64_t>> collect_cold_() const;
  void maybe_autocompact_();

  UserStoreConfig cfg_;
  // Hot tier. Payload slots plus SoA bookkeeping; `free_` recycles slots
  // vacated by demotion, `hand_` is the CLOCK cursor.
  std::vector<UserProfile> slots_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint8_t> ref_;
  std::vector<double> touched_;
  std::vector<std::uint32_t> free_;
  util::FlatHashMap<std::string, std::uint32_t> index_;  // uid → hot slot
  std::size_t hand_ = 0;
  std::size_t hot_count_ = 0;

  // Cold tier.
  int fd_ = -1;
  std::string cold_path_;  // empty for anonymous files
  std::uint64_t file_bytes_ = 0;
  std::uint64_t cold_live_bytes_ = 0;
  std::size_t cold_count_ = 0;
  std::size_t buckets_ = 0;                // power of two
  std::vector<std::uint64_t> heads_;       // bucket → offset+1 of newest record
  ColdBloom bloom_;
  UserStoreStats stats_;

  // Reused scratch: encode (payload/frame) and read (one record) buffers,
  // so steady-state demote/fault-in traffic allocates nothing. read_buf_
  // is mutable because reading a record is logically const (audits and
  // sorted exports read cold records without changing observable state).
  std::string payload_scratch_;
  std::string record_scratch_;
  std::string frame_scratch_;
  mutable std::string read_buf_;
};

}  // namespace oak::core
