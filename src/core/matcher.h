// Connection-dependency matching (paper §4.2.2).
//
// A rule activates for a violator when any of three conditions ties the
// rule's text to the violating server:
//
//   Tier 1 (direct include)   the rule contains an explicit src/href whose
//                             hostname is one of the violator's domains;
//   Tier 2 (text mention)     a violator domain appears anywhere in the rule
//                             text (inline scripts building URLs
//                             programmatically);
//   Tier 3 (external script)  the rule references an external script (by
//                             tier 1/2 on the *script's* domain); Oak fetches
//                             that script server-side and re-runs tiers 1/2
//                             over the script body. One level of expansion —
//                             "the payoff is rapidly diminishing" beyond it.
//
// Oak is explicitly *not* tracking execution/ordering dependencies; it only
// answers "did this block cause a connection to that server?" (Fig. 6).
//
// Matching is memoized through an optional MatchCache (on by default):
// script bodies are fetched once per TTL window instead of per report, and
// repeated (rule text, violator domains, reported scripts) questions are
// answered from a memo table. Owners must call invalidate_memo() whenever
// rule text they match against changes (the Oak server does this on
// add_rule/remove_rule). A Matcher instance is not thread-safe.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/match_cache.h"
#include "core/rule.h"
#include "util/flat_map.h"

namespace oak::core {

enum class MatchTier {
  kNone = 0,
  kDirect = 1,
  kText = 2,
  kExternalScript = 3,
};

std::string to_string(MatchTier t);

struct MatcherConfig {
  bool enable_text = true;             // tier 2
  bool enable_external_scripts = true; // tier 3
  bool enable_cache = true;            // memo + script-body cache
  MatchCacheConfig cache;
};

class Matcher {
 public:
  // Fetches a script body by URL, server-side ("Oak ... loading them
  // directly from the external sources"). Returns nullopt when unavailable.
  using ScriptFetcher =
      std::function<std::optional<std::string>(const std::string& url)>;

  explicit Matcher(ScriptFetcher fetch_script = nullptr,
                   MatcherConfig cfg = {});
  ~Matcher();

  // The best (lowest) tier connecting `rule_text` to a server reachable via
  // `violator_domains`. `report_script_urls` are the external scripts the
  // client reported loading — the tier-3 candidates. `now` drives the
  // script cache's TTL (pass the report timestamp).
  MatchTier match_text(const std::string& rule_text,
                       const std::vector<std::string>& violator_domains,
                       const std::vector<std::string>& report_script_urls = {},
                       double now = 0.0) const;

  MatchTier match_rule(const Rule& rule,
                       const std::vector<std::string>& violator_domains,
                       const std::vector<std::string>& report_script_urls = {},
                       double now = 0.0) const;

  // Hash-hoisted variants for the hot ingest loop: the caller computes
  // fnv1a(violator_domains) once per violator and fnv1a(report_script_urls)
  // once per report instead of per (rule × violator) probe. The hashes MUST
  // be fnv1a of the exact vectors passed alongside them (see
  // match_cache.h::fnv1a) — they key the memo table.
  MatchTier match_rule(const Rule& rule,
                       const std::vector<std::string>& violator_domains,
                       std::uint64_t domains_hash,
                       const std::vector<std::string>& report_script_urls,
                       std::uint64_t scripts_hash, double now) const;
  MatchTier match_text(const std::string& rule_text,
                       const std::vector<std::string>& violator_domains,
                       std::uint64_t domains_hash,
                       const std::vector<std::string>& report_script_urls,
                       std::uint64_t scripts_hash, double now) const;

  // Rule set changed: drop memoized verdicts (script bodies stay cached —
  // they belong to the web, not to the rule set).
  void invalidate_memo();

  const MatcherConfig& config() const { return cfg_; }
  // Nullptr when the cache is disabled.
  const MatchCacheStats* cache_stats() const;

 private:
  // Everything expensive about one rule text, computed once per text and
  // reused across every (violator × report) probe. Tier 1 drops from an
  // html::extract_references() pass over a multi-KB body to a binary search
  // in ref_hosts; tier-3 script labeling reuses the same host list instead
  // of re-extracting per reported script URL. Cleared with the memo — the
  // digest is a function of rule text, which rule churn rewrites.
  struct RuleDigest {
    std::uint64_t text_hash = 0;
    // Sorted, deduplicated hostnames of the text's explicit src/href
    // references (the tier-1 edge set).
    std::vector<std::string> ref_hosts;
  };

  const RuleDigest& digest_for(std::uint64_t text_hash,
                               const std::string& text) const;
  const RuleDigest& body_digest_for(std::uint64_t body_hash,
                                    const std::string& body) const;
  static RuleDigest build_digest(std::uint64_t text_hash,
                                 const std::string& text);

  MatchTier match_hashed(std::uint64_t text_hash, const std::string& text,
                         const std::vector<std::string>& domains,
                         std::uint64_t domains_hash,
                         const std::vector<std::string>& scripts,
                         std::uint64_t scripts_hash, double now) const;
  MatchTier compute(const RuleDigest& digest, const std::string& text,
                    const std::vector<std::string>& domains,
                    const std::vector<std::string>& scripts, double now) const;
  std::optional<std::string> fetch_body(const std::string& url,
                                        double now) const;
  bool text_mention(const std::string& text,
                    const std::vector<std::string>& domains) const;

  ScriptFetcher fetch_script_;
  MatcherConfig cfg_;
  mutable std::unique_ptr<MatchCache> cache_;  // null when disabled
  // rule id → hash of its default text, so the hot match_rule path does not
  // rehash multi-KB rule bodies per violator. Cleared with the memo.
  mutable util::FlatHashMap<int, std::uint64_t> rule_text_hash_;
  // text hash → digest. Keyed by hash rather than rule id because
  // match_text() (alternative texts, ad-hoc probes) has no id; collisions
  // carry the same (accepted) risk as the memo table itself. Script-body
  // digests live in their own table: compute() holds a reference into
  // text_digest_ while it runs, and inserting body digests there could
  // rehash it out from under that reference.
  mutable util::FlatHashMap<std::uint64_t, RuleDigest> text_digest_;
  mutable util::FlatHashMap<std::uint64_t, RuleDigest> body_digest_;
};

// External-script URLs among a report's entries (candidates for tier 3).
std::vector<std::string> report_script_urls(
    const std::vector<std::string>& entry_urls);
// View-based variant for the zero-copy ingest path: only the .js survivors
// are copied into owned strings.
std::vector<std::string> report_script_urls(
    std::span<const std::string_view> entry_urls);
// Recycling variant: clears and refills `out`, reusing both the vector and
// its strings' capacity across reports (steady-state ingest allocates
// nothing here).
void report_script_urls(std::span<const std::string_view> entry_urls,
                        std::vector<std::string>& out);

}  // namespace oak::core
