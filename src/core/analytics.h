// Operator analytics over Oak's per-user state (paper §6).
//
// "Examining which rules are being activated by clients enables site
// operators to determine which components of their sites are performing
// poorly, effectively using the performance reports of Oak as an offline
// auditing tool."
//
// SiteAnalytics aggregates a server's decision log and user profiles into
// the operator-facing views the paper describes: per-rule activation
// statistics (how many users, how often, how severe), the individual-vs-
// common classification of Fig. 14 / Table 3, and a summary suitable for a
// dashboard or periodic report. Everything is derived — the analyzer never
// mutates server state.
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "util/json.h"

namespace oak::core {

struct RuleStats {
  int rule_id = 0;
  std::string rule_name;
  std::string default_text_preview;  // first ~60 chars
  std::size_t activations = 0;
  std::size_t deactivations = 0;
  std::size_t expirations = 0;
  std::size_t keep_alternative = 0;
  std::size_t advance_alternative = 0;
  std::size_t distinct_users = 0;
  // Fraction of the site's known users that ever activated this rule
  // (Fig. 14's x-axis).
  double user_fraction = 0.0;
  // Worst violation severity that triggered this rule, in MADs.
  double worst_distance = 0.0;
  // Currently active across all user profiles.
  std::size_t currently_active = 0;

  bool is_common(double threshold = 0.18) const {
    return user_fraction > threshold;
  }
};

struct ViolatorStats {
  std::string ip;
  std::size_t times_blamed = 0;  // activations naming this server
  double worst_distance = 0.0;
  std::vector<int> rules_triggered;  // distinct, ordered by rule id
};

// Treated-vs-holdback lift (§6): valid only when a holdback_fraction is
// configured, both groups have PLT samples, and the resulting means are
// finite. PLT values come off the wire — the ingest accumulator rejects
// non-finite samples, and this guard keeps an overflowed or corrupted sum
// (Inf mean → Inf or NaN ratio) out of the JSON/report expositions.
struct LiftEstimate {
  std::size_t treated_users = 0;
  std::size_t holdback_users = 0;
  double treated_mean_plt_s = 0.0;
  double holdback_mean_plt_s = 0.0;
  // holdback/treated mean PLT; > 1 means Oak made pages faster. Stays 0.0
  // (not NaN/Inf) whenever the quotient would be meaningless.
  double ratio = 0.0;
  bool valid() const {
    return treated_users > 0 && holdback_users > 0 &&
           std::isfinite(treated_mean_plt_s) &&
           std::isfinite(holdback_mean_plt_s);
  }
};

// Serving-plane counters from the sharded front (core/sharded_server.h):
// how requests spread over lock shards and how much matcher work the memo
// layer absorbed. All-zero (valid() == false) when auditing a plain
// single-threaded OakServer.
struct ConcurrencyCounters {
  std::size_t shards = 0;
  std::uint64_t requests_handled = 0;
  std::uint64_t shard_contentions = 0;  // lock waits on the request plane
  std::uint64_t match_memo_hits = 0;
  std::uint64_t match_memo_misses = 0;
  std::uint64_t script_cache_hits = 0;
  std::uint64_t script_fetches = 0;

  bool valid() const { return shards > 0; }
  double memo_hit_rate() const {
    const std::uint64_t total = match_memo_hits + match_memo_misses;
    return total == 0 ? 0.0 : double(match_memo_hits) / double(total);
  }
  double script_hit_rate() const {
    const std::uint64_t total = script_cache_hits + script_fetches;
    return total == 0 ? 0.0 : double(script_cache_hits) / double(total);
  }

  // View over a merged oak::obs snapshot — the sharded server's counters
  // now live in the per-shard registries, and this is how audit() projects
  // them back into the legacy struct.
  static ConcurrencyCounters from_metrics(const obs::MetricsSnapshot& snap,
                                          std::size_t shards);
};

struct SiteSummary {
  std::string site_host;
  std::size_t users = 0;
  std::size_t reports = 0;
  std::size_t rules = 0;
  std::size_t rules_ever_activated = 0;
  std::size_t total_activations = 0;
  std::size_t pages_served_modified = 0;
  // Fig. 14 headline: fraction of rules at or below the 18%-of-users line.
  double individual_rule_fraction = 0.0;
};

class SiteAnalytics {
 public:
  // `now` is the audit time. When provided, an active rule whose TTL has
  // already lapsed (now >= expires_at, the half-open convention of rule.h)
  // is counted as an expiration rather than currently_active — the server
  // only reaps on its next interaction with that user, but it would never
  // apply the rule again, and the audit must agree with the serving plane.
  // Without `now` (timeless audit) every profile entry counts as active.
  explicit SiteAnalytics(const OakServer& server,
                         std::optional<double> now = std::nullopt);

  const SiteSummary& summary() const { return summary_; }
  // Per-rule stats, most-activated first. Includes never-activated rules.
  const std::vector<RuleStats>& rules() const { return rules_; }
  // Per-violator stats, most-blamed first.
  const std::vector<ViolatorStats>& violators() const { return violators_; }

  const RuleStats* rule(int rule_id) const;

  // Rules split by the Fig. 14 threshold.
  std::vector<const RuleStats*> common_rules(double threshold = 0.18) const;
  std::vector<const RuleStats*> individual_rules(
      double threshold = 0.18) const;

  const LiftEstimate& lift() const { return lift_; }

  // Attached by ShardedOakServer::audit(); defaults to invalid (absent from
  // the JSON/report output) for single-threaded servers.
  void set_concurrency(ConcurrencyCounters counters) {
    concurrency_ = counters;
  }
  const ConcurrencyCounters& concurrency() const { return concurrency_; }

  // A machine-readable export of the whole audit (stable key order).
  util::Json to_json() const;
  // A human-readable report.
  std::string to_report() const;

 private:
  SiteSummary summary_;
  std::vector<RuleStats> rules_;
  std::vector<ViolatorStats> violators_;
  LiftEstimate lift_;
  ConcurrencyCounters concurrency_;
};

}  // namespace oak::core
