#include "core/rule_parser.h"

#include <cctype>

#include "util/strings.h"

namespace oak::core {

namespace {

struct Lexer {
  explicit Lexer(const std::string& text) : text(text) {}

  const std::string& text;
  std::size_t pos = 0;
  std::size_t line = 1;

  [[noreturn]] void fail(const std::string& why) const {
    throw RuleParseError(line, why);
  }

  void skip_ws() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool eof() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool try_consume(char c) {
    if (eof()) return false;
    if (text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  // "->"
  void expect_arrow() {
    skip_ws();
    if (pos + 1 >= text.size() || text[pos] != '-' || text[pos + 1] != '>') {
      fail("expected '->'");
    }
    pos += 2;
  }

  std::string identifier() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_')) {
      ++pos;
    }
    if (pos == start) fail("expected identifier");
    return text.substr(start, pos - start);
  }

  std::string string_literal() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') fail("expected string");
    ++pos;
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c == '\n') fail("newline in string (use \\n)");
      if (c == '\\') {
        if (pos >= text.size()) fail("unterminated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  double number() {
    skip_ws();
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.')) {
      digits = true;
      ++pos;
    }
    if (!digits) fail("expected number");
    return std::stod(text.substr(start, pos - start));
  }
};

Rule parse_rule_block(Lexer& lex) {
  Rule rule;
  rule.name = lex.string_literal();
  lex.expect('{');
  bool saw_type = false;
  while (lex.peek() != '}') {
    const std::size_t field_line = lex.line;
    std::string key = lex.identifier();
    lex.expect(':');
    if (key == "type") {
      int t = static_cast<int>(lex.number());
      if (t < 1 || t > 3) throw RuleParseError(field_line, "type must be 1-3");
      rule.type = static_cast<RuleType>(t);
      saw_type = true;
    } else if (key == "default") {
      rule.default_text = lex.string_literal();
    } else if (key == "alt") {
      rule.alternatives.push_back(lex.string_literal());
    } else if (key == "ttl") {
      rule.ttl_s = lex.number();
    } else if (key == "scope") {
      rule.scope = util::Scope(lex.string_literal());
    } else if (key == "min_violations") {
      rule.min_violations = static_cast<int>(lex.number());
    } else if (key == "policy") {
      rule.policy = lex.string_literal();
    } else if (key == "sub") {
      SubRule sub;
      sub.from = lex.string_literal();
      lex.expect_arrow();
      sub.to = lex.string_literal();
      rule.sub_rules.push_back(std::move(sub));
    } else {
      throw RuleParseError(field_line, "unknown field '" + key + "'");
    }
  }
  lex.expect('}');
  if (!saw_type) throw RuleParseError(lex.line, "rule is missing 'type'");
  std::string why;
  if (!rule.validate(&why)) throw RuleParseError(lex.line, why);
  return rule;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<Rule> parse_rules(const std::string& text) {
  Lexer lex(text);
  std::vector<Rule> rules;
  while (!lex.eof()) {
    std::string kw = lex.identifier();
    if (kw != "rule") lex.fail("expected 'rule'");
    rules.push_back(parse_rule_block(lex));
  }
  return rules;
}

std::string format_rules(const std::vector<Rule>& rules) {
  std::string out;
  for (const auto& r : rules) {
    out += "rule \"" + escape(r.name) + "\" {\n";
    out += util::format("  type: %d\n", static_cast<int>(r.type));
    out += "  default: \"" + escape(r.default_text) + "\"\n";
    for (const auto& a : r.alternatives) {
      out += "  alt: \"" + escape(a) + "\"\n";
    }
    out += util::format("  ttl: %g\n", r.ttl_s);
    out += "  scope: \"" + escape(r.scope.pattern()) + "\"\n";
    if (r.min_violations != 1) {
      out += util::format("  min_violations: %d\n", r.min_violations);
    }
    if (!r.policy.empty()) {
      out += "  policy: \"" + escape(r.policy) + "\"\n";
    }
    for (const auto& s : r.sub_rules) {
      out += "  sub: \"" + escape(s.from) + "\" -> \"" + escape(s.to) + "\"\n";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace oak::core
