// Snapshot/restore of an OakServer's per-user state and decision log.
//
// The snapshot is plain JSON with a version tag. Rules are configuration
// (they live in the operator's rule files), so they are not serialized;
// active-rule references are stored by rule id and survive as long as the
// operator keeps ids stable — which add_rule does, since explicit ids are
// preserved and generated ids are sequential.
#include <vector>

#include "core/oak_server.h"

namespace oak::core {

namespace {
constexpr int kSnapshotVersion = 1;

util::Json active_rule_to_json(const ActiveRule& ar) {
  util::JsonObject o;
  o["rule"] = ar.rule_id;
  o["alt"] = ar.alternative_index;
  o["activated_at"] = ar.activated_at;
  o["expires_at"] = ar.expires_at;
  o["distance"] = ar.violation_distance;
  o["violator"] = ar.violator_ip;
  return util::Json(std::move(o));
}

ActiveRule active_rule_from_json(const util::Json& j) {
  ActiveRule ar;
  ar.rule_id = static_cast<int>(j.at("rule").as_int());
  ar.alternative_index = static_cast<std::size_t>(j.at("alt").as_int());
  ar.activated_at = j.at("activated_at").as_number();
  ar.expires_at = j.at("expires_at").as_number();
  ar.violation_distance = j.at("distance").as_number();
  ar.violator_ip = j.at("violator").as_string();
  return ar;
}

}  // namespace

util::Json OakServer::export_state() const {
  util::JsonObject root;
  root["version"] = kSnapshotVersion;
  root["site"] = site_host_;
  root["next_user"] = next_user_;
  root["reports_processed"] = reports_processed_;

  util::JsonObject users;
  // The store's sorted visitation covers hot and cold profiles alike — a
  // demoted user serializes byte-identically to one that stayed resident
  // (and JsonObject keeps the `users` keys sorted regardless).
  users_.for_each_sorted([&](const UserProfile& p) {
    util::JsonObject u;
    u["client_ip"] = p.client_ip;
    u["reports"] = p.reports_received;
    u["pages"] = p.pages_served;
    u["plt_sum"] = p.plt_sum_s;
    u["plt_count"] = p.plt_count;
    u["holdback"] = p.holdback;
    util::JsonArray active;
    for (const auto& [rid, ar] : p.active) active.push_back(active_rule_to_json(ar));
    u["active"] = std::move(active);
    util::JsonObject pending;
    for (const auto& [rid, n] : p.pending_violations) {
      pending[std::to_string(rid)] = n;
    }
    u["pending"] = std::move(pending);
    util::JsonObject next_alt;
    for (const auto& [rid, n] : p.next_alternative) {
      next_alt[std::to_string(rid)] = n;
    }
    u["next_alt"] = std::move(next_alt);
    util::JsonArray banned;
    for (int rid : p.banned) banned.emplace_back(rid);
    u["banned"] = std::move(banned);
    // Policy-engine state, emitted only when present: snapshots of
    // deployments that never race or cool down stay byte-identical to the
    // pre-engine format.
    if (!p.race.empty()) {
      util::JsonArray race;
      for (const auto& [rid, rs] : p.race) {
        util::JsonObject ro;
        ro["rule"] = rid;
        ro["cohort"] = rs.cohort;
        ro["plt_sum"] = rs.plt_sum;
        ro["count"] = rs.count;
        race.push_back(std::move(ro));
      }
      u["race"] = std::move(race);
    }
    if (!p.cooldown_until.empty()) {
      util::JsonObject cooldown;
      for (const auto& [rid, until] : p.cooldown_until) {
        cooldown[std::to_string(rid)] = until;
      }
      u["cooldown"] = std::move(cooldown);
    }
    users[p.user_id] = util::Json(std::move(u));
  });
  root["users"] = std::move(users);

  util::JsonArray log;
  for (const auto& d : log_.entries()) log.push_back(decision_to_json(d));
  root["log"] = std::move(log);
  // Replay contexts ride along only when recording was on, for the same
  // byte-compatibility reason as "race"/"cooldown" above.
  if (!log_.contexts().empty()) {
    util::JsonArray contexts;
    for (const auto& c : log_.contexts()) {
      contexts.push_back(context_to_json(c));
    }
    root["contexts"] = std::move(contexts);
  }
  return util::Json(std::move(root));
}

void OakServer::import_state(const util::Json& snapshot) {
  if (snapshot.at("version").as_int() != kSnapshotVersion) {
    throw util::JsonError("oak snapshot: unsupported version");
  }
  std::vector<UserProfile> profiles;
  for (const auto& [uid, u] : snapshot.at("users").as_object()) {
    UserProfile p;
    p.user_id = uid;
    p.client_ip = u.at("client_ip").as_string();
    p.reports_received = static_cast<std::size_t>(u.at("reports").as_int());
    p.pages_served = static_cast<std::size_t>(u.at("pages").as_int());
    p.plt_sum_s = u.at("plt_sum").as_number();
    p.plt_count = static_cast<std::size_t>(u.at("plt_count").as_int());
    p.holdback = u.at("holdback").as_bool();
    for (const auto& a : u.at("active").as_array()) {
      ActiveRule ar = active_rule_from_json(a);
      p.active[ar.rule_id] = ar;
    }
    for (const auto& [rid, n] : u.at("pending").as_object()) {
      p.pending_violations[std::stoi(rid)] = static_cast<int>(n.as_int());
    }
    for (const auto& [rid, n] : u.at("next_alt").as_object()) {
      p.next_alternative[std::stoi(rid)] =
          static_cast<std::size_t>(n.as_int());
    }
    for (const auto& b : u.at("banned").as_array()) {
      p.banned.insert(static_cast<int>(b.as_int()));
    }
    if (const auto* race = u.find("race")) {
      for (const auto& r : race->as_array()) {
        RaceStat rs;
        rs.cohort = static_cast<int>(r.at("cohort").as_int());
        rs.plt_sum = r.at("plt_sum").as_number();
        rs.count = static_cast<std::uint64_t>(r.at("count").as_int());
        p.race[static_cast<int>(r.at("rule").as_int())] = rs;
      }
    }
    if (const auto* cooldown = u.find("cooldown")) {
      for (const auto& [rid, until] : cooldown->as_object()) {
        p.cooldown_until[std::stoi(rid)] = until.as_number();
      }
    }
    profiles.push_back(std::move(p));
  }
  DecisionLog log;
  for (const auto& d : snapshot.at("log").as_array()) {
    log.record(decision_from_json(d));
  }
  if (const auto* contexts = snapshot.find("contexts")) {
    for (const auto& c : contexts->as_array()) {
      log.record_context(context_from_json(c));
    }
  }
  // Commit only after the whole snapshot parsed (strong exception safety).
  // Rebuilding through get_or_create re-establishes tiering naturally: once
  // the hot tier fills, earlier-imported profiles demote to the spill file.
  users_.clear();
  for (UserProfile& p : profiles) {
    users_.get_or_create(p.user_id, 0.0) = std::move(p);
  }
  log_ = std::move(log);
  next_user_ = static_cast<std::size_t>(snapshot.at("next_user").as_int());
  reports_processed_ =
      static_cast<std::size_t>(snapshot.at("reports_processed").as_int());
  // The engine's racing aggregates are derived state: rebuild them from the
  // imported profiles so a recovered server races (and declares winners)
  // exactly as the original would have.
  engine_->reset_race_state();
  users_.for_each_sorted([&](const UserProfile& p) {
    engine_->fold_profile(p);
  });
  engine_->finalize_races([this](int id) { return rule(id); });
}

}  // namespace oak::core
