#include "core/violator.h"

#include <algorithm>

namespace oak::core {

namespace {
// A zero MAD (majority of servers identical) makes distances infinite; keep
// severities finite so history comparisons stay well-ordered.
constexpr double kMaxDistance = 1e9;
double clamp_distance(double d) { return std::min(d, kMaxDistance); }

// Hard-failure check (independent of mode and of the MAD population
// floor): flags the observation when enough attempts failed outright.
void check_hard_failures(const ServerObservation& o, const DetectorConfig& cfg,
                         Violation* v) {
  if (o.failure_count >= cfg.min_hard_failures &&
      o.failure_rate() >= cfg.hard_failure_rate) {
    v->by_failure = true;
    v->failure_count = o.failure_count;
    v->failure_rate = o.failure_rate();
    v->failure_distance = kMaxDistance;
  }
}
}  // namespace

DetectionResult detect_violators(std::vector<ServerObservation> observations,
                                 const DetectorConfig& cfg) {
  DetectionResult result;
  result.observations = std::move(observations);

  std::vector<double> times;
  std::vector<double> tputs;
  for (const auto& o : result.observations) {
    if (o.has_small()) times.push_back(o.avg_small_time());
    if (o.has_large()) tputs.push_back(o.avg_large_tput());
  }
  // The metric vectors are scratch — summarize them in place (selection,
  // no copy) rather than through the copying mad_summary(). Sizes are
  // untouched; only the element order/values are consumed.
  result.time_summary = util::mad_summary_inplace(times);
  result.tput_summary = util::mad_summary_inplace(tputs);

  if (cfg.mode == DetectionMode::kAbsolute) {
    // Fixed bounds, no population requirement — exactly the parameter-
    // selection burden the paper's relative design avoids (§6).
    for (const auto& o : result.observations) {
      Violation v;
      v.ip = o.ip;
      v.domains.assign(o.domains.begin(), o.domains.end());
      check_hard_failures(o, cfg, &v);
      if (o.has_small() && o.avg_small_time() > cfg.absolute_time_s) {
        v.by_time = true;
        v.time_distance = clamp_distance(
            util::mad_distance(o.avg_small_time(), result.time_summary));
      }
      if (o.has_large() && o.avg_large_tput() < cfg.absolute_tput_bps) {
        v.by_tput = true;
        v.tput_distance = clamp_distance(
            -util::mad_distance(o.avg_large_tput(), result.tput_summary));
      }
      if (v.by_time || v.by_tput || v.by_failure) {
        result.violators.push_back(std::move(v));
      }
    }
    return result;
  }

  const bool check_time = times.size() >= cfg.min_population;
  const bool check_tput = tputs.size() >= cfg.min_population;

  for (const auto& o : result.observations) {
    Violation v;
    v.ip = o.ip;
    v.domains.assign(o.domains.begin(), o.domains.end());
    check_hard_failures(o, cfg, &v);
    if (check_time && o.has_small()) {
      const double x = o.avg_small_time();
      if (util::above_mad(x, result.time_summary, cfg.k)) {
        v.by_time = true;
        v.time_distance =
            clamp_distance(util::mad_distance(x, result.time_summary));
      }
    }
    if (check_tput && o.has_large()) {
      const double x = o.avg_large_tput();
      if (util::below_mad(x, result.tput_summary, cfg.k)) {
        v.by_tput = true;
        // Distance is negative below the median; report its magnitude.
        v.tput_distance =
            clamp_distance(-util::mad_distance(x, result.tput_summary));
      }
    }
    // "a violation of either type will result in the server being labeled
    // as a violator" (§4.2.1).
    if (v.by_time || v.by_tput || v.by_failure) {
      result.violators.push_back(std::move(v));
    }
  }
  return result;
}

DetectionResult detect_violators(const browser::PerfReport& report,
                                 const DetectorConfig& cfg) {
  return detect_violators(group_by_server(report, cfg.small_threshold_bytes),
                          cfg);
}

DetectionResult detect_violators(const browser::ReportView& report,
                                 const DetectorConfig& cfg) {
  return detect_violators(group_by_server(report, cfg.small_threshold_bytes),
                          cfg);
}

}  // namespace oak::core
