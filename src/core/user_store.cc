#include "core/user_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "util/framing.h"

namespace oak::core {
namespace {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Signed ints (rule ids) as zigzag varints, same scheme the journal uses.
void put_zigzag(std::string& out, std::int64_t v) {
  util::put_uvarint(out,
                    (std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63));
}

bool get_zigzag(std::string_view in, std::size_t& pos, std::int64_t& out) {
  std::uint64_t u = 0;
  if (!util::get_uvarint(in, pos, u)) return false;
  out = std::int64_t(u >> 1) ^ -std::int64_t(u & 1);
  return true;
}

void pwrite_all(int fd, std::string_view data, std::uint64_t off) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::pwrite(fd, p, left, off_t(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("user_store: spill-file write failed: " +
                               std::string(std::strerror(errno)));
    }
    p += n;
    left -= std::size_t(n);
    off += std::uint64_t(n);
  }
}

bool pread_all(int fd, char* dst, std::size_t len, std::uint64_t off) {
  while (len > 0) {
    const ssize_t n = ::pread(fd, dst, len, off_t(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file: offset past EOF
    dst += n;
    len -= std::size_t(n);
    off += std::uint64_t(n);
  }
  return true;
}

// Anonymous spill file: O_TMPFILE when the filesystem supports it, else
// mkstemp + immediate unlink. Either way the kernel reclaims the bytes when
// the fd closes — a cache should not be able to leak.
int open_anon_spill(const std::string& dir_cfg) {
  std::string dir = dir_cfg;
  if (dir.empty()) {
    const char* t = ::getenv("TMPDIR");
    dir = (t != nullptr && *t != '\0') ? t : "/tmp";
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
#ifdef O_TMPFILE
  const int fd = ::open(dir.c_str(), O_TMPFILE | O_RDWR | O_CLOEXEC, 0600);
  if (fd >= 0) return fd;
#endif
  std::string tmpl = dir + "/oak-cold-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const int fd2 = ::mkstemp(buf.data());
  if (fd2 < 0) {
    throw std::runtime_error("user_store: cannot create spill file in " + dir);
  }
  ::unlink(buf.data());
  return fd2;
}

int open_named_spill(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("user_store: cannot open spill file " + path);
  }
  return fd;
}

[[noreturn]] void throw_corrupt() {
  // The spill file is written and read by this process only; a bad frame
  // means a code or disk fault, and silently dropping user state would turn
  // that into an invisible behavior change. Fail loudly.
  throw std::runtime_error("user_store: corrupt cold record");
}

}  // namespace

// --- Profile codec -------------------------------------------------------

void encode_profile(const UserProfile& p, std::string& out) {
  util::put_lv(out, p.client_ip);
  util::put_uvarint(out, p.reports_received);
  util::put_uvarint(out, p.pages_served);
  util::put_double_bits(out, p.plt_sum_s);
  util::put_uvarint(out, p.plt_count);
  out.push_back(p.holdback ? char(1) : char(0));
  util::put_uvarint(out, p.active.size());
  for (const auto& [rid, ar] : p.active) {
    put_zigzag(out, rid);
    util::put_uvarint(out, ar.alternative_index);
    util::put_double_bits(out, ar.activated_at);
    util::put_double_bits(out, ar.expires_at);
    util::put_double_bits(out, ar.violation_distance);
    util::put_lv(out, ar.violator_ip);
  }
  util::put_uvarint(out, p.pending_violations.size());
  for (const auto& [rid, n] : p.pending_violations) {
    put_zigzag(out, rid);
    put_zigzag(out, n);
  }
  util::put_uvarint(out, p.next_alternative.size());
  for (const auto& [rid, n] : p.next_alternative) {
    put_zigzag(out, rid);
    util::put_uvarint(out, n);
  }
  util::put_uvarint(out, p.banned.size());
  for (int rid : p.banned) put_zigzag(out, rid);
  util::put_uvarint(out, p.race.size());
  for (const auto& [rid, rs] : p.race) {
    put_zigzag(out, rid);
    put_zigzag(out, rs.cohort);
    util::put_double_bits(out, rs.plt_sum);
    util::put_uvarint(out, rs.count);
  }
  util::put_uvarint(out, p.cooldown_until.size());
  for (const auto& [rid, until] : p.cooldown_until) {
    put_zigzag(out, rid);
    util::put_double_bits(out, until);
  }
}

bool decode_profile(std::string_view in, UserProfile& p) {
  p.active.clear();
  p.pending_violations.clear();
  p.next_alternative.clear();
  p.banned.clear();
  p.race.clear();
  p.cooldown_until.clear();
  std::size_t pos = 0;
  std::string_view sv;
  std::uint64_t u = 0;
  std::int64_t z = 0;
  if (!util::get_lv(in, pos, sv)) return false;
  p.client_ip.assign(sv);
  if (!util::get_uvarint(in, pos, u)) return false;
  p.reports_received = std::size_t(u);
  if (!util::get_uvarint(in, pos, u)) return false;
  p.pages_served = std::size_t(u);
  if (!util::get_double_bits(in, pos, p.plt_sum_s)) return false;
  if (!util::get_uvarint(in, pos, u)) return false;
  p.plt_count = std::size_t(u);
  if (pos >= in.size()) return false;
  p.holdback = in[pos++] != 0;

  std::uint64_t count = 0;
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    ActiveRule ar;
    ar.rule_id = int(z);
    if (!util::get_uvarint(in, pos, u)) return false;
    ar.alternative_index = std::size_t(u);
    if (!util::get_double_bits(in, pos, ar.activated_at)) return false;
    if (!util::get_double_bits(in, pos, ar.expires_at)) return false;
    if (!util::get_double_bits(in, pos, ar.violation_distance)) return false;
    if (!util::get_lv(in, pos, sv)) return false;
    ar.violator_ip.assign(sv);
    p.active.insert_or_assign(ar.rule_id, std::move(ar));
  }
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    const int rid = int(z);
    if (!get_zigzag(in, pos, z)) return false;
    p.pending_violations.insert_or_assign(rid, int(z));
  }
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    const int rid = int(z);
    if (!util::get_uvarint(in, pos, u)) return false;
    p.next_alternative.insert_or_assign(rid, std::size_t(u));
  }
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    p.banned.insert(int(z));
  }
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    const int rid = int(z);
    RaceStat rs;
    if (!get_zigzag(in, pos, z)) return false;
    rs.cohort = int(z);
    if (!util::get_double_bits(in, pos, rs.plt_sum)) return false;
    if (!util::get_uvarint(in, pos, rs.count)) return false;
    p.race.insert_or_assign(rid, rs);
  }
  if (!util::get_uvarint(in, pos, count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!get_zigzag(in, pos, z)) return false;
    const int rid = int(z);
    double until = 0.0;
    if (!util::get_double_bits(in, pos, until)) return false;
    p.cooldown_until.insert_or_assign(rid, until);
  }
  return pos == in.size();
}

// --- Bloom filter --------------------------------------------------------

void ColdBloom::reset(std::uint64_t bits) {
  std::uint64_t b = 64;
  while (b < bits) b <<= 1;
  words_.assign(b / 64, 0);
  inserts_ = 0;
}

void ColdBloom::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserts_ = 0;
}

void ColdBloom::insert(std::uint64_t h) {
  if (words_.empty()) return;
  const std::uint64_t mask = words_.size() * 64 - 1;
  const std::uint64_t step = (h * 0x9e3779b97f4a7c15ull) | 1;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t bit = (h + i * step) & mask;
    words_[bit >> 6] |= 1ull << (bit & 63);
  }
  ++inserts_;
}

bool ColdBloom::maybe(std::uint64_t h) const {
  if (words_.empty()) return false;
  const std::uint64_t mask = words_.size() * 64 - 1;
  const std::uint64_t step = (h * 0x9e3779b97f4a7c15ull) | 1;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t bit = (h + i * step) & mask;
    if ((words_[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

// --- Store ---------------------------------------------------------------

TieredUserStore::TieredUserStore(UserStoreConfig cfg) : cfg_(std::move(cfg)) {
  if (!tiered()) return;
  buckets_ = 64;
  while (buckets_ < cfg_.cold_buckets) buckets_ <<= 1;
  heads_.assign(buckets_, 0);
  bloom_.reset(cfg_.bloom_bits > 0 ? cfg_.bloom_bits : (1u << 16));
  slots_.reserve(cfg_.hot_capacity);
  live_.reserve(cfg_.hot_capacity);
  ref_.reserve(cfg_.hot_capacity);
  touched_.reserve(cfg_.hot_capacity);
  open_cold_file_();
}

TieredUserStore::~TieredUserStore() {
  if (fd_ >= 0) ::close(fd_);
}

void TieredUserStore::open_cold_file_() {
  if (!cfg_.cold_file.empty()) {
    cold_path_ = cfg_.cold_file;
    fd_ = open_named_spill(cold_path_);
  } else {
    fd_ = open_anon_spill(cfg_.spill_dir);
  }
}

UserProfile* TieredUserStore::find(const std::string& uid, double now,
                                   bool touch) {
  if (std::uint32_t* slot = index_.find(uid)) {
    if (touch) {
      ref_[*slot] = 1;
      touched_[*slot] = now;
    }
    return &slots_[*slot];
  }
  if (!tiered() || cold_count_ == 0) return nullptr;
  if (!bloom_.maybe(fnv1a64(uid))) return nullptr;
  UserProfile* p = fault_in_(uid, now, touch);
  // Compaction rewrites the cold file only; `p` points into the hot tier.
  if (p != nullptr) maybe_autocompact_();
  return p;
}

UserProfile& TieredUserStore::get_or_create(const std::string& uid,
                                            double now) {
  if (UserProfile* existing = find(uid, now, true)) return *existing;
  const std::uint32_t slot = alloc_slot_(now);
  UserProfile& p = slots_[slot];
  p = UserProfile{};
  p.user_id = uid;
  index_[uid] = slot;
  live_[slot] = 1;
  ref_[slot] = 1;
  touched_[slot] = now;
  ++hot_count_;
  maybe_autocompact_();
  return p;
}

std::uint32_t TieredUserStore::alloc_slot_(double now) {
  (void)now;
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  if (!tiered() || slots_.size() < cfg_.hot_capacity) {
    slots_.emplace_back();
    live_.push_back(0);
    ref_.push_back(0);
    touched_.push_back(0.0);
    return std::uint32_t(slots_.size() - 1);
  }
  const std::uint32_t s = evict_one_();
  // evict_one_ demoted the occupant and parked the slot on free_; claim it.
  free_.pop_back();
  return s;
}

std::uint32_t TieredUserStore::evict_one_() {
  const std::size_t n = slots_.size();
  // Bound: one full sweep clears every reference bit, so the second sweep
  // must find a victim.
  for (std::size_t scanned = 0; scanned <= 2 * n; ++scanned) {
    if (hand_ >= n) hand_ = 0;
    const std::size_t s = hand_++;
    if (!live_[s]) continue;
    if (ref_[s]) {
      ref_[s] = 0;
      continue;
    }
    demote_slot_(std::uint32_t(s));
    return std::uint32_t(s);
  }
  throw std::logic_error("user_store: clock sweep found no victim");
}

void TieredUserStore::demote_slot_(std::uint32_t s) {
  UserProfile& p = slots_[s];
  payload_scratch_.clear();
  encode_profile(p, payload_scratch_);
  append_cold_(p.user_id, payload_scratch_);
  bloom_.insert(fnv1a64(p.user_id));
  index_.erase(p.user_id);
  p = UserProfile{};
  live_[s] = 0;
  ref_[s] = 0;
  free_.push_back(s);
  --hot_count_;
  ++cold_count_;
  ++stats_.demotions;
}

std::uint64_t TieredUserStore::append_cold_(std::string_view uid,
                                            std::string_view blob) {
  const std::uint64_t h = fnv1a64(uid);
  const std::size_t bucket = std::size_t(h) & (buckets_ - 1);
  record_scratch_.clear();
  util::put_uvarint(record_scratch_, heads_[bucket]);
  util::put_lv(record_scratch_, uid);
  record_scratch_.append(blob);
  frame_scratch_.clear();
  util::append_frame(frame_scratch_, record_scratch_);
  const std::uint64_t off = file_bytes_;
  pwrite_all(fd_, frame_scratch_, off);
  file_bytes_ += frame_scratch_.size();
  cold_live_bytes_ += frame_scratch_.size();
  heads_[bucket] = off + 1;
  return frame_scratch_.size();
}

UserProfile* TieredUserStore::fault_in_(const std::string& uid, double now,
                                        bool touch) {
  const std::uint64_t h = fnv1a64(uid);
  std::uint64_t off_plus1 = heads_[std::size_t(h) & (buckets_ - 1)];
  while (off_plus1 != 0) {
    ColdRecord rec;
    if (!read_record_(off_plus1 - 1, rec)) throw_corrupt();
    if (rec.uid == uid) {
      // Decode before allocating: alloc may demote another user, which
      // reuses the scratch buffers this record views into.
      UserProfile restored;
      if (!decode_profile(rec.blob, restored)) throw_corrupt();
      restored.user_id = uid;
      cold_live_bytes_ -= rec.framed_bytes;
      --cold_count_;
      ++stats_.faultins;
      const std::uint32_t slot = alloc_slot_(now);
      slots_[slot] = std::move(restored);
      index_[uid] = slot;
      live_[slot] = 1;
      ref_[slot] = touch ? 1 : 0;
      touched_[slot] = now;
      ++hot_count_;
      return &slots_[slot];
    }
    off_plus1 = rec.prev_plus1;
  }
  return nullptr;  // Bloom false positive: the uid was never demoted.
}

bool TieredUserStore::read_record_(std::uint64_t offset,
                                   ColdRecord& out) const {
  // Peek enough for the header (varint length <= 10 bytes + fixed32 CRC),
  // then read the exact frame.
  char hdr[14];
  const ssize_t got = ::pread(fd_, hdr, sizeof hdr, off_t(offset));
  if (got <= 0) return false;
  const std::string_view hv(hdr, std::size_t(got));
  std::size_t pos = 0;
  std::uint64_t len = 0;
  if (!util::get_uvarint(hv, pos, len)) return false;
  if (len > util::kMaxFramePayload) return false;
  const std::uint64_t framed = pos + 4 + len;
  read_buf_.resize(std::size_t(framed));
  if (!pread_all(fd_, read_buf_.data(), std::size_t(framed), offset)) {
    return false;
  }
  std::size_t fpos = 0;
  std::string_view payload;
  if (util::read_frame(read_buf_, fpos, payload) != util::FrameStatus::kOk) {
    return false;
  }
  std::size_t p = 0;
  if (!util::get_uvarint(payload, p, out.prev_plus1)) return false;
  if (!util::get_lv(payload, p, out.uid)) return false;
  out.blob = payload.substr(p);
  out.framed_bytes = framed;
  return true;
}

std::vector<std::pair<std::string, std::uint64_t>>
TieredUserStore::collect_cold_() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(cold_count_);
  std::vector<std::string> seen;  // per-bucket: newest record shadows older
  for (std::size_t b = 0; b < buckets_; ++b) {
    std::uint64_t off_plus1 = heads_[b];
    if (off_plus1 == 0) continue;
    seen.clear();
    while (off_plus1 != 0) {
      ColdRecord rec;
      if (!read_record_(off_plus1 - 1, rec)) throw_corrupt();
      const std::uint64_t older = rec.prev_plus1;
      std::string uid(rec.uid);
      if (std::find(seen.begin(), seen.end(), uid) == seen.end()) {
        if (index_.find(uid) == nullptr) {  // hot copy shadows cold records
          out.emplace_back(uid, off_plus1 - 1);
        }
        seen.push_back(std::move(uid));
      }
      off_plus1 = older;
    }
  }
  return out;
}

void TieredUserStore::for_each_sorted(
    const std::function<void(const UserProfile&)>& fn) const {
  struct Entry {
    std::string_view uid;
    std::uint64_t slot_or_off = 0;
    bool hot = false;
  };
  std::vector<Entry> entries;
  entries.reserve(size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (live_[s]) entries.push_back({slots_[s].user_id, s, true});
  }
  std::vector<std::pair<std::string, std::uint64_t>> cold;
  if (tiered() && cold_count_ > 0) {
    cold = collect_cold_();
    for (const auto& [uid, off] : cold) entries.push_back({uid, off, false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.uid < b.uid; });
  for (const Entry& e : entries) {
    if (e.hot) {
      fn(slots_[std::size_t(e.slot_or_off)]);
      continue;
    }
    ColdRecord rec;
    if (!read_record_(e.slot_or_off, rec)) throw_corrupt();
    UserProfile tmp;
    if (!decode_profile(rec.blob, tmp)) throw_corrupt();
    tmp.user_id.assign(e.uid);
    fn(tmp);
  }
}

void TieredUserStore::for_each_sorted_mut(
    const std::function<bool(UserProfile&)>& fn) {
  struct Entry {
    std::string_view uid;
    std::uint64_t slot_or_off = 0;
    bool hot = false;
  };
  std::vector<Entry> entries;
  entries.reserve(size());
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (live_[s]) entries.push_back({slots_[s].user_id, s, true});
  }
  std::vector<std::pair<std::string, std::uint64_t>> cold;
  if (tiered() && cold_count_ > 0) {
    cold = collect_cold_();
    for (const auto& [uid, off] : cold) entries.push_back({uid, off, false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.uid < b.uid; });
  bool any_cold_changed = false;
  for (const Entry& e : entries) {
    if (e.hot) {
      fn(slots_[std::size_t(e.slot_or_off)]);  // mutated in place
      continue;
    }
    ColdRecord rec;
    if (!read_record_(e.slot_or_off, rec)) throw_corrupt();
    const std::uint64_t old_framed = rec.framed_bytes;
    UserProfile tmp;
    if (!decode_profile(rec.blob, tmp)) throw_corrupt();
    tmp.user_id.assign(e.uid);
    if (fn(tmp)) {
      // Re-serialize in place of the old record: the new version shadows it
      // via the bucket chain; the old bytes become compactable garbage.
      payload_scratch_.clear();
      encode_profile(tmp, payload_scratch_);
      append_cold_(tmp.user_id, payload_scratch_);
      cold_live_bytes_ -= old_framed;
      any_cold_changed = true;
    }
  }
  if (any_cold_changed) maybe_autocompact_();
}

void TieredUserStore::clear() {
  slots_.clear();
  live_.clear();
  ref_.clear();
  touched_.clear();
  free_.clear();
  index_.clear();
  hand_ = 0;
  hot_count_ = 0;
  cold_count_ = 0;
  cold_live_bytes_ = 0;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0) {
      throw std::runtime_error("user_store: spill-file truncate failed");
    }
    file_bytes_ = 0;
    std::fill(heads_.begin(), heads_.end(), 0);
    bloom_.clear();
  }
}

std::size_t TieredUserStore::demote_idle(double now) {
  if (!tiered() || cfg_.idle_after_s <= 0.0) return 0;
  std::size_t demoted = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (live_[s] && touched_[s] + cfg_.idle_after_s <= now) {
      demote_slot_(std::uint32_t(s));
      ++demoted;
    }
  }
  if (demoted > 0) maybe_autocompact_();
  return demoted;
}

std::size_t TieredUserStore::demote_lru() {
  if (!tiered() || hot_count_ == 0) return 0;
  const std::uint32_t s = evict_one_();
  (void)s;  // stays on free_ for the next allocation
  maybe_autocompact_();
  return 1;
}

void TieredUserStore::compact_cold() {
  if (!tiered() || fd_ < 0) return;
  const auto live = collect_cold_();

  // Geometry sized to the live cold population: chains stay short and the
  // Bloom filter keeps its false-positive rate as the population grows.
  std::size_t new_buckets = 64;
  while (new_buckets < cfg_.cold_buckets) new_buckets <<= 1;
  while (new_buckets * 8 < live.size() && new_buckets < (1u << 22)) {
    new_buckets <<= 1;
  }
  ColdBloom new_bloom;
  new_bloom.reset(cfg_.bloom_bits > 0
                      ? cfg_.bloom_bits
                      : std::max<std::uint64_t>(1u << 16, live.size() * 16));

  std::string rename_from;
  int nfd = -1;
  if (cold_path_.empty()) {
    nfd = open_anon_spill(cfg_.spill_dir);
  } else {
    rename_from = cold_path_ + ".compact";
    nfd = open_named_spill(rename_from);
  }

  std::vector<std::uint64_t> new_heads(new_buckets, 0);
  std::uint64_t new_bytes = 0;
  try {
    for (const auto& [uid, off] : live) {
      ColdRecord rec;
      if (!read_record_(off, rec)) throw_corrupt();
      const std::uint64_t h = fnv1a64(uid);
      const std::size_t b = std::size_t(h) & (new_buckets - 1);
      record_scratch_.clear();
      util::put_uvarint(record_scratch_, new_heads[b]);
      util::put_lv(record_scratch_, uid);
      record_scratch_.append(rec.blob);
      frame_scratch_.clear();
      util::append_frame(frame_scratch_, record_scratch_);
      pwrite_all(nfd, frame_scratch_, new_bytes);
      new_heads[b] = new_bytes + 1;
      new_bytes += frame_scratch_.size();
      new_bloom.insert(h);
    }
  } catch (...) {
    ::close(nfd);
    if (!rename_from.empty()) ::unlink(rename_from.c_str());
    throw;
  }
  if (!rename_from.empty() &&
      ::rename(rename_from.c_str(), cold_path_.c_str()) != 0) {
    ::close(nfd);
    throw std::runtime_error("user_store: spill-file rename failed");
  }
  ::close(fd_);
  fd_ = nfd;
  file_bytes_ = new_bytes;
  cold_live_bytes_ = new_bytes;
  heads_ = std::move(new_heads);
  buckets_ = new_buckets;
  bloom_ = std::move(new_bloom);
  cold_count_ = live.size();
  ++stats_.cold_compactions;
}

void TieredUserStore::maybe_autocompact_() {
  if (!tiered() || fd_ < 0) return;
  // Garbage trigger: over half the (non-trivial) file is dead records.
  const bool garbage = file_bytes_ > (4u << 20) &&
                       file_bytes_ > 2 * cold_live_bytes_ + (1u << 20);
  // Saturation trigger: enough inserts that false positives start costing
  // chain walks; compaction re-sizes the filter to the live population (or,
  // with a pinned bloom_bits, re-inserts only live users). Only fires when
  // rebuilding would actually shed inserts — if the live population alone
  // saturates a pinned filter, compacting in a loop cannot fix it.
  const bool saturated = bloom_.inserts() * 10 > bloom_.bit_count() &&
                         bloom_.inserts() > 2 * cold_count_;
  if (garbage || saturated) compact_cold();
}

}  // namespace oak::core
