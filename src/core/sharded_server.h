// Sharded, thread-safe front for Oak — the concurrent entry point.
//
// ConcurrentOakServer (core/concurrent_server.h) funnels every page serve
// and report POST through one global mutex, so adding cores buys nothing.
// But Oak's mutable state is almost perfectly partitionable: every request
// touches exactly one user profile (identified by the oak_uid cookie), and
// the §4.2.3/§4.2.4 machinery never reads across users. ShardedOakServer
// exploits that:
//
//  * N lock shards, each a full single-threaded OakServer owning the
//    profiles whose user-id hash lands on it (plus that shard's DecisionLog
//    and memoized Matcher). A request locks only its shard.
//  * The rule set is read-mostly configuration. Rule churn takes a
//    std::shared_mutex exclusively and replicates the change to every shard
//    (ids stay identical across shards); requests hold it shared.
//  * Users are minted here: a cookie-less request draws a fresh id from one
//    atomic counter, is routed by its hash, and the Set-Cookie is attached
//    on the way out — so shards never race on id allocation.
//  * Audits, snapshots and the merged decision log are assembled by locking
//    the shards (all of them, in index order, for a consistent cut) and
//    merging per-shard state; import partitions a snapshot the same way.
//
// Lock order, everywhere: rules_mu_ before any shard mutex, shard mutexes
// in ascending index order. OakServer stays the single-threaded core; this
// wrapper adds routing and locking only.
//
// Durability (core/durability.h): when cfg.durability.enabled, construction
// first recovers — snapshot import, then parallel per-shard replay of the
// journal suffixes — and every subsequent state-mutating request is
// journaled under the shard lock it already holds (rule churn under the
// exclusive rule lock). Compaction runs opportunistically off the request
// path once the journal suffix crosses the configured threshold.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/analytics.h"
#include "core/durability.h"
#include "core/oak_server.h"

namespace oak::core {

class ShardedOakServer {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  ShardedOakServer(page::WebUniverse& universe, std::string site_host,
                   OakConfig cfg = {},
                   std::size_t num_shards = kDefaultShards);

  // --- Rule configuration (exclusive over the rule set; replicated to all
  // shards with identical ids).
  int add_rule(Rule rule);
  void add_rules(std::vector<Rule> rules);
  bool remove_rule(int rule_id, double now);

  // --- Request plane (shared rule lock + one shard lock).
  http::Response handle(const http::Request& req, double now);

  // Shard-targeted entry point for callers that already parsed the
  // oak_uid cookie (the wire front-end's shard-affine ingest path): skips
  // the cookie re-parse and routes straight to shard_for(uid). `uid` must
  // be the request's oak_uid cookie value, or empty to mint a fresh
  // identity (Set-Cookie is attached exactly as handle() would).
  http::Response handle_for_user(const http::Request& req, double now,
                                 std::string uid);

  // Register this server as the universe's handler for the site host. The
  // handler captures `this` and is safe to drive from many request threads.
  void install();

  // --- Introspection / aggregation.
  const std::string& site_host() const { return site_host_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_for(const std::string& user_id) const;
  std::size_t user_count() const;
  std::size_t reports_processed() const;
  // A copy of the rule set (identical on every shard).
  std::vector<Rule> rules() const;
  const OakConfig& config() const { return cfg_; }
  // Profile lookup crosses a lock boundary, so it returns a copy.
  std::optional<UserProfile> profile(const std::string& user_id) const;

  // Per-shard decision logs merged into one, stably ordered by timestamp.
  DecisionLog merged_decision_log() const;
  std::size_t decision_count(DecisionType t) const;

  // Consistent point-in-time snapshot in OakServer's schema — importable by
  // a single OakServer or by a ShardedOakServer with any shard count.
  util::Json export_state() const;
  void import_state(const util::Json& snapshot);

  // Consistent audit over all shards, including concurrency counters.
  // `now` (audit time) makes the expired-vs-active classification agree
  // with the serving plane; see SiteAnalytics.
  SiteAnalytics audit(std::optional<double> now = std::nullopt) const;

  // --- Observability. One consistent cut over every shard's registry
  // (identical histogram specs merge by addition), with the wrapper's own
  // serving-plane tallies (requests, lock contentions, shard count) and the
  // per-shard match-cache counters folded in. metrics_text() is the
  // Prometheus exposition; metrics_json() the JSON one (reused by the
  // bench emitters).
  obs::MetricsSnapshot metrics_snapshot() const;
  std::string metrics_text() const;
  util::Json metrics_json() const;

  // Aggregated matcher-cache counters across shards.
  MatchCacheStats match_cache_stats() const;

  struct ShardStats {
    std::size_t shards = 0;
    std::uint64_t requests_handled = 0;
    // A request found its shard lock held and had to block.
    std::uint64_t contentions = 0;
  };
  ShardStats shard_stats() const;

  // --- Backpressure signal (wire front-end admission control).
  // Fraction [0, 1] of the fullest shard's ingest queue: 0.0 idle, 1.0 when
  // some shard's unclaimed queue has reached its depth bound and producers
  // are about to block. Lock-free; always 0 when the queue is disabled.
  double ingest_pressure() const;
  // Unclaimed queued ops summed across shards (diagnostics/metrics).
  std::size_t ingest_queue_pending() const;

  // Escape hatch for single-threaded phases (setup, assertions in tests).
  // Callers must guarantee no concurrent handle() calls while using it.
  OakServer& shard(std::size_t i) { return *shards_[i]->server; }

  // --- Durability (no-ops unless cfg.durability.enabled).
  // Snapshot + journal truncation under a consistent all-shard cut. Safe to
  // call concurrently with the request plane; redundant calls coalesce.
  void compact();
  // What recovery did at construction (performed=false when disabled).
  durability::RecoveryReport recovery_report() const {
    return dur_ ? dur_->report() : durability::RecoveryReport{};
  }

 private:
  // One queued request, living on its producer's stack until done. The
  // combiner fills `resp` while holding the shard lock; `done` flips (and
  // the producer wakes) only under the queue mutex, so the producer reads a
  // fully published response.
  struct PendingOp {
    const http::Request* req = nullptr;  // effective request (cookie attached)
    double now = 0.0;
    const std::string* uid = nullptr;
    bool fresh = false;
    std::uint64_t minted = 0;
    http::Response resp;
    bool done = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<OakServer> server;
    std::atomic<std::uint64_t> handled{0};
    std::atomic<std::uint64_t> contended{0};

    // --- Batched ingest hand-off (flat combining; DESIGN.md §6).
    // qmu is a leaf lock: never held together with mu or rules_mu_ — the
    // combiner claims a batch under qmu, releases it, takes mu to execute,
    // releases mu, then retakes qmu to publish completions.
    std::mutex qmu;
    std::condition_variable qcv;
    std::vector<PendingOp*> queue;  // unclaimed ops, enqueue order
    bool combiner_active = false;
    // Mirrors queue.size(), updated under qmu but readable lock-free: the
    // wire front-end polls it per request for admission control and must
    // never touch qmu on that path.
    std::atomic<std::size_t> q_pending{0};

    // Queue health instruments (registered in this shard's server registry
    // so metrics_snapshot() merges them fleet-wide). Null when metrics or
    // the queue are disabled.
    obs::Gauge* q_depth = nullptr;
    obs::Histogram* q_batch_size = nullptr;
    obs::Counter* q_enqueued = nullptr;
    obs::Counter* q_batches = nullptr;
    obs::Counter* q_backpressure = nullptr;
  };

  std::unique_lock<std::mutex> lock_shard(Shard& s) const;
  // Run one request against its shard's core + journal; caller holds the
  // shard lock (directly, or as the combiner).
  void execute_op(std::size_t shard_index, Shard& shard, PendingOp& op);
  // Combiner loop: drain `shard.queue` in batches of at most
  // cfg_.ingest_queue.max_batch, one shard-lock acquisition per batch.
  // Entered and exited with `ql` (shard.qmu) held and combiner_active true;
  // resets combiner_active before returning. Guarantees own.done on return.
  void combine(std::size_t shard_index, Shard& shard,
               std::unique_lock<std::mutex>& ql, PendingOp& own);
  // Recovery at construction: startup() → rules + state import → parallel
  // per-shard replay → start_recording() (+ baseline compact on bootstrap).
  void enable_durability_();
  // Merge bodies for callers that already hold the shared rule lock and
  // every shard lock in index order.
  util::Json export_state_locked() const;
  durability::SnapshotEnvelope make_envelope_locked() const;

  page::WebUniverse& universe_;
  std::string site_host_;
  OakConfig cfg_;
  // Guards the replicated rule set (and shard topology invariants): shared
  // for requests and reads, exclusive for add_rule/remove_rule.
  mutable std::shared_mutex rules_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_user_{1};
  // Null unless cfg_.durability.enabled.
  std::unique_ptr<durability::Manager> dur_;
  // Coalesces threshold-triggered compactions: the request thread that wins
  // the exchange runs compact(); everyone else keeps serving.
  std::atomic<bool> compacting_{false};
  // Compactions that threw (disk full, fsync failure). The flag reset is
  // RAII-scoped so a throwing compaction can't wedge compacting_ true and
  // silently disable compaction for the rest of the process.
  std::atomic<std::uint64_t> compact_failures_{0};
};

}  // namespace oak::core
