// Page modification (paper §4.3).
//
// Applies a user's active rules to an outgoing page: type-1 blocks are
// removed, type-2/3 blocks are replaced by the selected alternative, and
// sub-rules of activated parents are applied afterwards. Domain-wide rules
// (bare hostname texts) rewrite every occurrence of the hostname, which
// covers tags *and* inline programmatic loaders at once.
//
// For type-2 rewrites the modifier also emits cache-alias descriptors so the
// browser can keep using a cached copy of the identical object (§4.3's
// custom response header).
#pragma once

#include <string>
#include <vector>

#include "core/rule.h"

namespace oak::core {

struct AppliedRule {
  const Rule* rule = nullptr;
  std::size_t alternative_index = 0;  // ignored for type 1
};

struct ModificationRecord {
  int rule_id = 0;
  std::size_t replacements = 0;
};

struct ModifiedPage {
  std::string html;
  // Values for the X-Oak-Alias response header, one per rewritten mapping:
  // "<alias-url> <canonical-url>" or "host:<alias> host:<canonical>".
  std::vector<std::string> aliases;
  std::vector<ModificationRecord> records;

  // Total text edits across all rules.
  std::size_t total_replacements() const;
};

ModifiedPage apply_rules(const std::string& html, const std::string& page_path,
                         const std::vector<AppliedRule>& active);

}  // namespace oak::core
