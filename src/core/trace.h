// Report traces: record the client-report stream, replay it offline.
//
// The paper positions Oak's reports as an auditing asset (§6) and its
// server keeps "log information on the objects downloaded from particular
// servers" (§5). A ReportTrace is that log: an append-only JSONL stream of
// (time, user, report) records. Replaying a trace into a fresh OakServer
// reproduces every decision — or, replayed into a server with a *different*
// configuration, answers what-if questions ("would k = 3 have switched
// fewer users?") against real traffic instead of synthetic workloads.
#pragma once

#include <string>
#include <vector>

#include "browser/report.h"
#include "core/oak_server.h"

namespace oak::core {

struct TraceRecord {
  double time = 0.0;
  std::string user_id;
  browser::PerfReport report;
};

class ReportTrace {
 public:
  void append(double time, const std::string& user_id,
              const browser::PerfReport& report);

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  // One JSON object per line; the report payload is the exact wire format.
  std::string to_jsonl() const;
  // Throws util::JsonError on any malformed line.
  static ReportTrace from_jsonl(const std::string& text);

  // Feed every record into `server` in order (via OakServer::analyze).
  // Returns the number of activations the replay produced.
  std::size_t replay_into(OakServer& server) const;

 private:
  std::vector<TraceRecord> records_;
};

// Convenience: wrap an OakServer handler so every report POST is also
// recorded into `trace` before processing. Install the returned handler on
// the universe instead of calling server.install().
page::WebUniverse::Handler recording_handler(OakServer& server,
                                             ReportTrace& trace);

}  // namespace oak::core
