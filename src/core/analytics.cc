#include "core/analytics.h"

#include <algorithm>
#include <set>

#include "util/strings.h"

namespace oak::core {

namespace {
std::string preview(const std::string& text, std::size_t max_len = 60) {
  if (text.size() <= max_len) return text;
  return text.substr(0, max_len - 3) + "...";
}
}  // namespace

ConcurrencyCounters ConcurrencyCounters::from_metrics(
    const obs::MetricsSnapshot& snap, std::size_t shards) {
  ConcurrencyCounters c;
  c.shards = shards;
  c.requests_handled = snap.counter("oak_requests_total");
  c.shard_contentions = snap.counter("oak_shard_contentions_total");
  c.match_memo_hits = snap.counter("oak_match_memo_hits_total");
  c.match_memo_misses = snap.counter("oak_match_memo_misses_total");
  c.script_cache_hits = snap.counter("oak_match_script_hits_total");
  c.script_fetches = snap.counter("oak_match_script_fetches_total");
  return c;
}

SiteAnalytics::SiteAnalytics(const OakServer& server,
                             std::optional<double> now) {
  const DecisionLog& log = server.decision_log();

  summary_.site_host = server.site_host();
  summary_.users = server.user_count();
  summary_.reports = server.reports_processed();
  summary_.rules = server.rules().size();
  summary_.pages_served_modified =
      log.count(DecisionType::kServeModified);

  // Per-rule accumulation, seeded with every configured rule so that
  // never-activated rules appear with zero counts (Fig. 14 plots them too).
  std::map<int, RuleStats> by_rule;
  for (const Rule& r : server.rules()) {
    RuleStats s;
    s.rule_id = r.id;
    s.rule_name = r.name;
    s.default_text_preview = preview(r.default_text);
    by_rule[r.id] = std::move(s);
  }
  std::map<int, std::set<std::string>> users_per_rule;
  std::map<std::string, ViolatorStats> by_violator;
  std::map<std::string, std::set<int>> violator_rules;

  for (const Decision& d : log.entries()) {
    auto it = by_rule.find(d.rule_id);
    if (it != by_rule.end()) {
      RuleStats& s = it->second;
      switch (d.type) {
        case DecisionType::kActivate:
          s.activations++;
          users_per_rule[d.rule_id].insert(d.user_id);
          s.worst_distance = std::max(s.worst_distance, d.distance);
          if (!d.violator_ip.empty()) {
            ViolatorStats& v = by_violator[d.violator_ip];
            v.ip = d.violator_ip;
            v.times_blamed++;
            v.worst_distance = std::max(v.worst_distance, d.distance);
            violator_rules[d.violator_ip].insert(d.rule_id);
          }
          break;
        case DecisionType::kDeactivate: s.deactivations++; break;
        case DecisionType::kExpire: s.expirations++; break;
        case DecisionType::kKeepAlternative: s.keep_alternative++; break;
        case DecisionType::kAdvanceAlternative: s.advance_alternative++; break;
        case DecisionType::kServeModified: break;
        case DecisionType::kRaceWinner: break;
      }
    }
  }

  double treated_sum = 0.0, holdback_sum = 0.0;
  std::size_t treated_n = 0, holdback_n = 0;
  server.for_each_profile([&](const UserProfile& profile) {
    for (const auto& [rule_id, ar] : profile.active) {
      auto it = by_rule.find(rule_id);
      if (it == by_rule.end()) continue;
      // Same half-open boundary as OakServer::expire_rules: at exactly
      // now == expires_at the rule is expired. The server reaps lazily (on
      // the user's next serve/report), so an audit taken in between must
      // classify the entry by what the server would do, not by what the
      // profile map still holds.
      if (now.has_value() && ar.expires_at > 0.0 && *now >= ar.expires_at) {
        it->second.expirations++;
      } else {
        it->second.currently_active++;
      }
    }
    if (profile.plt_count > 0) {
      if (profile.holdback) {
        holdback_sum += profile.mean_plt_s();
        ++holdback_n;
        ++lift_.holdback_users;
      } else {
        treated_sum += profile.mean_plt_s();
        ++treated_n;
        ++lift_.treated_users;
      }
    }
  });
  if (treated_n > 0) lift_.treated_mean_plt_s = treated_sum / treated_n;
  if (holdback_n > 0) lift_.holdback_mean_plt_s = holdback_sum / holdback_n;
  if (lift_.valid() && lift_.treated_mean_plt_s > 0.0) {
    lift_.ratio = lift_.holdback_mean_plt_s / lift_.treated_mean_plt_s;
  }

  std::size_t below_threshold = 0;
  for (auto& [rule_id, s] : by_rule) {
    s.distinct_users = users_per_rule[rule_id].size();
    s.user_fraction = summary_.users == 0
                          ? 0.0
                          : double(s.distinct_users) / double(summary_.users);
    if (s.activations > 0) summary_.rules_ever_activated++;
    summary_.total_activations += s.activations;
    if (!s.is_common()) ++below_threshold;
    rules_.push_back(s);
  }
  summary_.individual_rule_fraction =
      rules_.empty() ? 0.0 : double(below_threshold) / double(rules_.size());
  std::sort(rules_.begin(), rules_.end(),
            [](const RuleStats& a, const RuleStats& b) {
              if (a.activations != b.activations) {
                return a.activations > b.activations;
              }
              return a.rule_id < b.rule_id;
            });

  for (auto& [ip, v] : by_violator) {
    v.rules_triggered.assign(violator_rules[ip].begin(),
                             violator_rules[ip].end());
    violators_.push_back(v);
  }
  std::sort(violators_.begin(), violators_.end(),
            [](const ViolatorStats& a, const ViolatorStats& b) {
              if (a.times_blamed != b.times_blamed) {
                return a.times_blamed > b.times_blamed;
              }
              return a.ip < b.ip;
            });
}

const RuleStats* SiteAnalytics::rule(int rule_id) const {
  for (const auto& s : rules_) {
    if (s.rule_id == rule_id) return &s;
  }
  return nullptr;
}

std::vector<const RuleStats*> SiteAnalytics::common_rules(
    double threshold) const {
  std::vector<const RuleStats*> out;
  for (const auto& s : rules_) {
    if (s.user_fraction > threshold) out.push_back(&s);
  }
  return out;
}

std::vector<const RuleStats*> SiteAnalytics::individual_rules(
    double threshold) const {
  std::vector<const RuleStats*> out;
  for (const auto& s : rules_) {
    if (s.user_fraction <= threshold) out.push_back(&s);
  }
  return out;
}

util::Json SiteAnalytics::to_json() const {
  util::JsonObject root;
  util::JsonObject summary;
  summary["site"] = summary_.site_host;
  summary["users"] = summary_.users;
  summary["reports"] = summary_.reports;
  summary["rules"] = summary_.rules;
  summary["rules_ever_activated"] = summary_.rules_ever_activated;
  summary["total_activations"] = summary_.total_activations;
  summary["pages_served_modified"] = summary_.pages_served_modified;
  summary["individual_rule_fraction"] = summary_.individual_rule_fraction;
  root["summary"] = std::move(summary);

  if (lift_.valid()) {
    util::JsonObject lift;
    lift["treated_users"] = lift_.treated_users;
    lift["holdback_users"] = lift_.holdback_users;
    lift["treated_mean_plt_s"] = lift_.treated_mean_plt_s;
    lift["holdback_mean_plt_s"] = lift_.holdback_mean_plt_s;
    lift["ratio"] = lift_.ratio;
    root["lift"] = std::move(lift);
  }

  if (concurrency_.valid()) {
    util::JsonObject conc;
    conc["shards"] = concurrency_.shards;
    conc["requests_handled"] = concurrency_.requests_handled;
    conc["shard_contentions"] = concurrency_.shard_contentions;
    conc["match_memo_hits"] = concurrency_.match_memo_hits;
    conc["match_memo_misses"] = concurrency_.match_memo_misses;
    conc["match_memo_hit_rate"] = concurrency_.memo_hit_rate();
    conc["script_cache_hits"] = concurrency_.script_cache_hits;
    conc["script_fetches"] = concurrency_.script_fetches;
    conc["script_cache_hit_rate"] = concurrency_.script_hit_rate();
    root["concurrency"] = std::move(conc);
  }

  util::JsonArray rules;
  for (const auto& s : rules_) {
    util::JsonObject o;
    o["id"] = s.rule_id;
    o["name"] = s.rule_name;
    o["default"] = s.default_text_preview;
    o["activations"] = s.activations;
    o["deactivations"] = s.deactivations;
    o["expirations"] = s.expirations;
    o["kept"] = s.keep_alternative;
    o["advanced"] = s.advance_alternative;
    o["users"] = s.distinct_users;
    o["user_fraction"] = s.user_fraction;
    o["worst_distance"] = s.worst_distance;
    o["currently_active"] = s.currently_active;
    rules.emplace_back(std::move(o));
  }
  root["rules"] = std::move(rules);

  util::JsonArray violators;
  for (const auto& v : violators_) {
    util::JsonObject o;
    o["ip"] = v.ip;
    o["times_blamed"] = v.times_blamed;
    o["worst_distance"] = v.worst_distance;
    util::JsonArray rule_ids;
    for (int id : v.rules_triggered) rule_ids.emplace_back(id);
    o["rules"] = std::move(rule_ids);
    violators.emplace_back(std::move(o));
  }
  root["violators"] = std::move(violators);
  return util::Json(std::move(root));
}

std::string SiteAnalytics::to_report() const {
  std::string out;
  out += util::format(
      "Oak audit for %s\n"
      "  users: %zu  reports: %zu  rules: %zu (%zu ever activated)\n"
      "  activations: %zu  modified pages served: %zu\n"
      "  rules below the 18%%-of-users line: %.0f%%\n\n",
      summary_.site_host.c_str(), summary_.users, summary_.reports,
      summary_.rules, summary_.rules_ever_activated,
      summary_.total_activations, summary_.pages_served_modified,
      summary_.individual_rule_fraction * 100.0);
  if (lift_.valid()) {
    out += util::format(
        "  lift: treated %.0f ms vs holdback %.0f ms (%.2fx, %zu vs %zu "
        "users)\n\n",
        lift_.treated_mean_plt_s * 1000.0, lift_.holdback_mean_plt_s * 1000.0,
        lift_.ratio, lift_.treated_users, lift_.holdback_users);
  }
  if (concurrency_.valid()) {
    out += util::format(
        "  serving: %zu shards, %llu requests (%llu lock waits)\n"
        "  match cache: %.0f%% memo hits, %.0f%% script-body hits "
        "(%llu fetches)\n\n",
        concurrency_.shards,
        static_cast<unsigned long long>(concurrency_.requests_handled),
        static_cast<unsigned long long>(concurrency_.shard_contentions),
        concurrency_.memo_hit_rate() * 100.0,
        concurrency_.script_hit_rate() * 100.0,
        static_cast<unsigned long long>(concurrency_.script_fetches));
  }
  out += "rules by activations:\n";
  for (const auto& s : rules_) {
    if (s.activations == 0) continue;
    out += util::format(
        "  [%3d] %-24s act=%zu deact=%zu users=%zu (%.0f%%%s) worst=%.1f "
        "active-now=%zu\n",
        s.rule_id, s.rule_name.c_str(), s.activations, s.deactivations,
        s.distinct_users, s.user_fraction * 100.0,
        s.is_common() ? ", common" : "", s.worst_distance,
        s.currently_active);
  }
  if (!violators_.empty()) {
    out += "most-blamed servers:\n";
    for (std::size_t i = 0; i < violators_.size() && i < 10; ++i) {
      const auto& v = violators_[i];
      out += util::format("  %-16s blamed %zu times, worst %.1f MADs\n",
                          v.ip.c_str(), v.times_blamed, v.worst_distance);
    }
  }
  return out;
}

}  // namespace oak::core
