#include "core/durability.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define OAK_HAVE_FSYNC 1
#endif

#include "util/framing.h"

namespace oak::durability {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Files.

std::unique_ptr<PosixFile> PosixFile::open_append(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("durability: cannot open '" + path +
                             "' for append: " + std::strerror(errno));
  }
  // Unbuffered: every append goes straight to the OS page cache in one
  // write(). The journal's baseline guarantee is surviving a *process*
  // crash, and bytes parked in a stdio buffer die with the process; a
  // buffered fwrite+fflush pair reaches the same place with an extra copy.
  std::setvbuf(f, nullptr, _IONBF, 0);
  return std::unique_ptr<PosixFile>(new PosixFile(f));
}

PosixFile::~PosixFile() {
  if (f_ != nullptr) std::fclose(f_);
}

std::size_t PosixFile::append(std::string_view bytes) {
  if (bytes.empty()) return 0;
  return std::fwrite(bytes.data(), 1, bytes.size(), f_);
}

bool PosixFile::sync() {
  if (std::fflush(f_) != 0) return false;
#if defined(OAK_HAVE_FSYNC)
  return ::fsync(fileno(f_)) == 0;
#else
  return true;
#endif
}

std::size_t FaultFile::append(std::string_view bytes) {
  if (plan_->dead()) return 0;
  const std::uint64_t remaining = plan_->budget_bytes - plan_->written;
  const std::size_t allowed =
      static_cast<std::size_t>(std::min<std::uint64_t>(remaining, bytes.size()));
  const std::size_t wrote = inner_->append(bytes.substr(0, allowed));
  plan_->written += wrote;
  if (wrote == bytes.size()) ++plan_->complete_appends;
  return wrote;
}

bool FaultFile::sync() {
  if (plan_->dead()) return false;
  return inner_->sync();
}

// ---------------------------------------------------------------------------
// Records.

std::uint64_t Record::seq() const {
  switch (kind) {
    case RecordKind::kRequest:
      return request.seq;
    case RecordKind::kAddRule:
      return add_rule.seq;
    case RecordKind::kRemoveRule:
      return remove_rule.seq;
  }
  return 0;
}

std::string encode_record(const Record& r) {
  std::string out;
  encode_record_into(r, out);
  return out;
}

void encode_request_into(const RequestRecordView& q, std::string& out) {
  util::put_uvarint(out, q.seq);
  util::put_double_bits(out, q.now);
  out.push_back(q.post ? 1 : 0);
  util::put_uvarint(out, q.minted);
  util::put_lv(out, q.uid);
  util::put_lv(out, q.client_ip);
  util::put_lv(out, q.path);
  util::put_lv(out, q.body);
}

void encode_record_into(const Record& r, std::string& out) {
  out.push_back(static_cast<char>(r.kind));
  switch (r.kind) {
    case RecordKind::kRequest: {
      const RequestRecord& q = r.request;
      encode_request_into(
          RequestRecordView{q.seq, q.now, q.post, q.minted, q.uid, q.client_ip,
                            q.path, q.body},
          out);
      break;
    }
    case RecordKind::kAddRule: {
      util::put_uvarint(out, r.add_rule.seq);
      util::put_uvarint(out, static_cast<std::uint64_t>(r.add_rule.rule_id));
      util::put_lv(out, r.add_rule.rule_text);
      break;
    }
    case RecordKind::kRemoveRule: {
      util::put_uvarint(out, r.remove_rule.seq);
      util::put_double_bits(out, r.remove_rule.now);
      util::put_uvarint(out,
                        static_cast<std::uint64_t>(r.remove_rule.rule_id));
      break;
    }
  }
}

bool decode_record(std::string_view payload, Record& out) {
  if (payload.empty()) return false;
  std::size_t pos = 0;
  const auto kind = static_cast<std::uint8_t>(payload[pos++]);
  std::string_view sv;
  switch (kind) {
    case static_cast<std::uint8_t>(RecordKind::kRequest): {
      out.kind = RecordKind::kRequest;
      RequestRecord& q = out.request;
      if (!util::get_uvarint(payload, pos, q.seq)) return false;
      if (!util::get_double_bits(payload, pos, q.now)) return false;
      if (pos >= payload.size()) return false;
      q.post = payload[pos++] != 0;
      if (!util::get_uvarint(payload, pos, q.minted)) return false;
      if (!util::get_lv(payload, pos, sv)) return false;
      q.uid.assign(sv);
      if (!util::get_lv(payload, pos, sv)) return false;
      q.client_ip.assign(sv);
      if (!util::get_lv(payload, pos, sv)) return false;
      q.path.assign(sv);
      if (!util::get_lv(payload, pos, sv)) return false;
      q.body.assign(sv);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kAddRule): {
      out.kind = RecordKind::kAddRule;
      AddRuleRecord& a = out.add_rule;
      std::uint64_t id = 0;
      if (!util::get_uvarint(payload, pos, a.seq)) return false;
      if (!util::get_uvarint(payload, pos, id)) return false;
      a.rule_id = static_cast<std::int64_t>(id);
      if (!util::get_lv(payload, pos, sv)) return false;
      a.rule_text.assign(sv);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kRemoveRule): {
      out.kind = RecordKind::kRemoveRule;
      RemoveRuleRecord& d = out.remove_rule;
      std::uint64_t id = 0;
      if (!util::get_uvarint(payload, pos, d.seq)) return false;
      if (!util::get_double_bits(payload, pos, d.now)) return false;
      if (!util::get_uvarint(payload, pos, id)) return false;
      d.rule_id = static_cast<std::int64_t>(id);
      break;
    }
    default:
      return false;
  }
  return pos == payload.size();  // trailing bytes are corruption
}

// ---------------------------------------------------------------------------
// Journal.

std::size_t Journal::append(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 16);
  util::append_frame(frame, payload);
  if (file_ != nullptr) file_->append(frame);
  bytes_ += frame.size();
  return frame.size();
}

// Room reserved in front of the payload for the frame header: a payload
// length uvarint (<= 10 bytes) plus the fixed32 CRC.
constexpr std::size_t kFrameHeaderMax = 10 + 4;

std::size_t Journal::append_record(const Record& r) {
  frame_scratch_.assign(kFrameHeaderMax, '\0');
  encode_record_into(r, frame_scratch_);
  return flush_scratch_();
}

std::size_t Journal::append_request(const RequestRecordView& q) {
  frame_scratch_.assign(kFrameHeaderMax, '\0');
  frame_scratch_.push_back(static_cast<char>(RecordKind::kRequest));
  encode_request_into(q, frame_scratch_);
  return flush_scratch_();
}

std::size_t Journal::flush_scratch_() {
  const std::size_t payload_len = frame_scratch_.size() - kFrameHeaderMax;
  const std::string_view payload(frame_scratch_.data() + kFrameHeaderMax,
                                 payload_len);
  // Build the real header in a small (SSO) buffer, then butt it up against
  // the payload so the frame goes out as one contiguous write.
  std::string head;
  util::put_uvarint(head, payload_len);
  util::put_fixed32(head, util::crc32(payload));
  const std::size_t start = kFrameHeaderMax - head.size();
  std::memcpy(frame_scratch_.data() + start, head.data(), head.size());
  const std::string_view frame(frame_scratch_.data() + start,
                               head.size() + payload_len);
  if (file_ != nullptr) file_->append(frame);
  bytes_ += frame.size();
  return frame.size();
}

void Journal::sync() {
  if (file_ != nullptr) file_->sync();
}

namespace {

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

}  // namespace

JournalScan scan_journal_file(const std::string& path,
                              std::uint64_t start_offset) {
  JournalScan scan;
  const std::string data = read_whole_file(path);
  if (start_offset >= data.size()) {
    scan.bytes_consumed = data.size();
    return scan;
  }
  scan.bytes_consumed = start_offset;
  std::size_t pos = static_cast<std::size_t>(start_offset);
  while (pos < data.size()) {
    std::string_view payload;
    const util::FrameStatus status = util::read_frame(data, pos, payload);
    if (status != util::FrameStatus::kOk) break;
    Record rec;
    if (!decode_record(payload, rec)) break;  // CRC ok, contents not: stop
    scan.records.push_back(std::move(rec));
    scan.bytes_consumed = pos;
  }
  scan.torn = scan.bytes_consumed < data.size();
  return scan;
}

// ---------------------------------------------------------------------------
// Manifest and snapshot envelope.

util::Json Manifest::to_json() const {
  util::JsonObject o;
  o["format_version"] = format_version;
  o["epoch"] = epoch;
  o["shards"] = shards;
  o["snapshot"] = snapshot_file;
  o["ctl_offset"] = ctl_offset;
  util::JsonArray offs;
  for (std::uint64_t v : shard_offsets) offs.emplace_back(v);
  o["shard_offsets"] = std::move(offs);
  return util::Json(std::move(o));
}

Manifest Manifest::from_json(const util::Json& j) {
  Manifest m;
  m.format_version = static_cast<int>(j.at("format_version").as_int());
  if (m.format_version > kManifestFormatVersion) {
    throw std::runtime_error(
        "durability: MANIFEST format_version " +
        std::to_string(m.format_version) +
        " is newer than this binary supports (" +
        std::to_string(kManifestFormatVersion) +
        "); recover with the binary that wrote it");
  }
  m.epoch = static_cast<std::uint64_t>(j.at("epoch").as_int());
  m.shards = static_cast<std::size_t>(j.at("shards").as_int());
  m.snapshot_file = j.at("snapshot").as_string();
  m.ctl_offset = static_cast<std::uint64_t>(j.at("ctl_offset").as_int());
  for (const auto& v : j.at("shard_offsets").as_array()) {
    m.shard_offsets.push_back(static_cast<std::uint64_t>(v.as_int()));
  }
  if (m.shard_offsets.size() != m.shards) {
    throw std::runtime_error("durability: MANIFEST shard_offsets/shards mismatch");
  }
  return m;
}

util::Json SnapshotEnvelope::to_json() const {
  util::JsonObject o;
  o["envelope_version"] = kSnapshotEnvelopeVersion;
  o["next_rule_id"] = next_rule_id;
  util::JsonArray rs;
  for (const RuleEntry& r : rules) {
    util::JsonObject e;
    e["id"] = r.id;
    e["rule"] = r.text;
    rs.push_back(util::Json(std::move(e)));
  }
  o["rules"] = std::move(rs);
  o["state"] = state;
  return util::Json(std::move(o));
}

SnapshotEnvelope SnapshotEnvelope::from_json(const util::Json& j) {
  const util::Json* ver = j.find("envelope_version");
  if (ver == nullptr) {
    throw std::runtime_error(
        "durability: snapshot file is not an envelope (missing "
        "envelope_version)");
  }
  if (ver->as_int() > kSnapshotEnvelopeVersion) {
    throw std::runtime_error(
        "durability: snapshot envelope_version newer than this binary");
  }
  SnapshotEnvelope env;
  env.next_rule_id = j.at("next_rule_id").as_int();
  for (const auto& e : j.at("rules").as_array()) {
    env.rules.push_back(
        RuleEntry{e.at("id").as_int(), e.at("rule").as_string()});
  }
  env.state = j.at("state");
  return env;
}

// ---------------------------------------------------------------------------
// Atomic file write.

void write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw std::runtime_error("durability: cannot write '" + tmp +
                               "': " + std::strerror(errno));
    }
    const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = wrote == bytes.size() && std::fflush(f) == 0;
#if defined(OAK_HAVE_FSYNC)
    ok = ok && ::fsync(fileno(f)) == 0;
#endif
    std::fclose(f);
    if (!ok) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("durability: short write to '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("durability: rename '" + tmp + "' -> '" + path +
                             "' failed: " + std::strerror(errno));
  }
}

// ---------------------------------------------------------------------------
// Manager.

namespace {
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kCtlName = "wal-ctl.log";
constexpr const char* kLegacySnapshotName = "snapshot.json";

std::string shard_journal_name(std::size_t i) {
  return "wal-" + std::to_string(i) + ".log";
}

void truncate_to(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return;
  const std::uint64_t actual = fs::file_size(path, ec);
  if (ec || actual <= size) return;
  fs::resize_file(path, size, ec);
  if (ec) {
    throw std::runtime_error("durability: cannot truncate '" + path +
                             "': " + ec.message());
  }
}

}  // namespace

Manager::Manager(Options opts, std::size_t shards, bool metrics_enabled)
    : opts_(std::move(opts)), num_shards_(shards) {
  if (opts_.dir.empty()) {
    throw std::runtime_error("durability: Options::dir must be set");
  }
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec) {
    throw std::runtime_error("durability: cannot create '" + opts_.dir +
                             "': " + ec.message());
  }
  shard_offsets_.assign(num_shards_, 0);
  consumed_shards_.assign(num_shards_, 0);
  journals_.resize(num_shards_);
  if (metrics_enabled) {
    obs_.appends = &metrics_.counter("oak_journal_appends_total");
    obs_.append_bytes = &metrics_.histogram("oak_journal_append_bytes",
                                            obs::HistogramSpec::bytes());
    obs_.sync_seconds = &metrics_.histogram("oak_journal_sync_seconds");
    obs_.compactions = &metrics_.counter("oak_journal_compactions_total");
    obs_.live_bytes = &metrics_.gauge("oak_journal_live_bytes");
    obs_.epoch = &metrics_.gauge("oak_journal_epoch");
    obs_.recovery_seconds = &metrics_.histogram("oak_journal_recovery_seconds");
    obs_.replayed = &metrics_.counter("oak_journal_records_replayed_total");
    obs_.torn_tails = &metrics_.counter("oak_journal_torn_tails_total");
  }
}

std::string Manager::file_path(const std::string& name) const {
  return (fs::path(opts_.dir) / name).string();
}

std::unique_ptr<AppendFile> Manager::open_file(const std::string& path) const {
  if (opts_.file_factory) return opts_.file_factory(path);
  return PosixFile::open_append(path);
}

Manager::Startup Manager::startup() {
  Startup st;
  st.shards.resize(num_shards_);
  const std::string manifest_path = file_path(kManifestName);
  std::error_code ec;
  if (fs::exists(manifest_path, ec)) {
    have_manifest_ = true;
    const Manifest m =
        Manifest::from_json(util::Json::parse(read_whole_file(manifest_path)));
    if (m.shards != num_shards_) {
      throw std::runtime_error(
          "durability: MANIFEST was written for " + std::to_string(m.shards) +
          " shards but this server has " + std::to_string(num_shards_) +
          "; recover with the manifest's shard count, then export/import to "
          "resize");
    }
    epoch_ = m.epoch;
    snapshot_file_ = m.snapshot_file;
    ctl_offset_ = m.ctl_offset;
    shard_offsets_ = m.shard_offsets;
    if (!snapshot_file_.empty()) {
      st.snapshot = SnapshotEnvelope::from_json(
          util::Json::parse(read_whole_file(file_path(snapshot_file_))));
      st.have_snapshot = true;
      report_.rules_loaded = st.snapshot.rules.size();
    }
    JournalScan cs = scan_journal_file(file_path(kCtlName), ctl_offset_);
    consumed_ctl_ = cs.bytes_consumed;
    if (cs.torn) ++st.torn_tails;
    st.ctl = std::move(cs.records);
    for (std::size_t i = 0; i < num_shards_; ++i) {
      JournalScan ss =
          scan_journal_file(file_path(shard_journal_name(i)), shard_offsets_[i]);
      consumed_shards_[i] = ss.bytes_consumed;
      if (ss.torn) ++st.torn_tails;
      st.shards[i] = std::move(ss.records);
    }
    for (const Record& r : st.ctl) st.max_seq = std::max(st.max_seq, r.seq());
    for (const auto& list : st.shards) {
      for (const Record& r : list) st.max_seq = std::max(st.max_seq, r.seq());
    }
  } else if (fs::exists(file_path(kLegacySnapshotName), ec)) {
    // Pre-journal deployment: a bare export_state JSON and nothing else.
    // Degraded cold start — state restored, no journal suffix to replay,
    // rules expected from operator configuration (the old contract).
    st.legacy = true;
    st.bootstrap = true;
    st.legacy_state =
        util::Json::parse(read_whole_file(file_path(kLegacySnapshotName)));
  } else {
    st.bootstrap = true;
  }
  report_.legacy = st.legacy;
  report_.bootstrapped = st.bootstrap;
  report_.epoch = epoch_;
  report_.torn_tails = st.torn_tails;
  if (obs_.torn_tails != nullptr) obs_.torn_tails->inc(st.torn_tails);
  return st;
}

void Manager::start_recording() {
  // Drop torn tails so appending resumes at a clean frame boundary, clamp
  // replay offsets to what actually survived, and re-commit the manifest so
  // offsets can never point past data that future appends will overwrite.
  truncate_to(file_path(kCtlName), consumed_ctl_);
  ctl_offset_ = std::min(ctl_offset_, consumed_ctl_);
  for (std::size_t i = 0; i < num_shards_; ++i) {
    truncate_to(file_path(shard_journal_name(i)), consumed_shards_[i]);
    shard_offsets_[i] = std::min(shard_offsets_[i], consumed_shards_[i]);
  }
  if (have_manifest_) write_manifest(current_manifest());

  ctl_ = std::make_unique<Journal>(file_path(kCtlName),
                                   open_file(file_path(kCtlName)),
                                   consumed_ctl_);
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const std::string path = file_path(shard_journal_name(i));
    journals_[i] =
        std::make_unique<Journal>(path, open_file(path), consumed_shards_[i]);
    live_bytes_.fetch_add(consumed_shards_[i] - shard_offsets_[i]);
  }
  live_bytes_.fetch_add(consumed_ctl_ - ctl_offset_);
  if (obs_.live_bytes != nullptr) {
    obs_.live_bytes->set(static_cast<double>(live_bytes_.load()));
  }
  if (obs_.epoch != nullptr) obs_.epoch->set(static_cast<double>(epoch_));
  recording_ = true;
}

Manifest Manager::current_manifest() const {
  Manifest m;
  m.epoch = epoch_;
  m.shards = num_shards_;
  m.snapshot_file = snapshot_file_;
  m.ctl_offset = ctl_offset_;
  m.shard_offsets = shard_offsets_;
  return m;
}

void Manager::write_manifest(const Manifest& m) {
  write_file_atomic(file_path(kManifestName), m.to_json().dump_pretty(2));
}

void Manager::append_request(std::size_t shard, const RequestRecordView& r) {
  Journal& j = *journals_[shard];
  const std::size_t framed = j.append_request(r);
  if (opts_.fsync_each_append) {
    obs::ScopedTimer timer(obs_.sync_seconds);
    j.sync();
  }
  live_bytes_.fetch_add(framed, std::memory_order_relaxed);
  if (obs_.appends != nullptr) obs_.appends->inc();
  if (obs_.append_bytes != nullptr) {
    obs_.append_bytes->observe(static_cast<double>(framed));
  }
  if (obs_.live_bytes != nullptr) {
    obs_.live_bytes->set(
        static_cast<double>(live_bytes_.load(std::memory_order_relaxed)));
  }
}

void Manager::append_control(const Record& r) {
  const std::size_t framed = ctl_->append_record(r);
  if (opts_.fsync_each_append) {
    obs::ScopedTimer timer(obs_.sync_seconds);
    ctl_->sync();
  }
  live_bytes_.fetch_add(framed, std::memory_order_relaxed);
  if (obs_.appends != nullptr) obs_.appends->inc();
  if (obs_.append_bytes != nullptr) {
    obs_.append_bytes->observe(static_cast<double>(framed));
  }
}

void Manager::note_recovery(std::uint64_t records_replayed,
                            double replay_seconds) {
  report_.performed = true;
  report_.records_replayed = records_replayed;
  report_.replay_seconds = replay_seconds;
  if (obs_.replayed != nullptr) obs_.replayed->inc(records_replayed);
  if (obs_.recovery_seconds != nullptr) {
    obs_.recovery_seconds->observe(replay_seconds);
  }
}

bool Manager::should_compact() const {
  return recording_ &&
         live_bytes_.load(std::memory_order_relaxed) >=
             opts_.compact_threshold_bytes;
}

void Manager::compact(const SnapshotEnvelope& env) {
  const std::uint64_t e = epoch_ + 1;
  const std::string snap_name = "snapshot-" + std::to_string(e) + ".json";

  // 1. The snapshot itself, durable before anything references it.
  write_file_atomic(file_path(snap_name), env.to_json().dump());

  // 2. Commit: a manifest pointing at the new snapshot, replay offsets at
  // the current journal ends. From here on, recovery uses epoch `e`.
  Manifest committed;
  committed.epoch = e;
  committed.shards = num_shards_;
  committed.snapshot_file = snap_name;
  committed.ctl_offset = ctl_->bytes();
  for (const auto& j : journals_) committed.shard_offsets.push_back(j->bytes());
  {
    obs::ScopedTimer timer(obs_.sync_seconds);
    write_manifest(committed);
  }
  const std::string old_snap = snapshot_file_;
  epoch_ = e;
  snapshot_file_ = snap_name;
  ctl_offset_ = committed.ctl_offset;
  shard_offsets_ = committed.shard_offsets;
  if (!old_snap.empty() && old_snap != snap_name) {
    std::error_code ec;
    fs::remove(file_path(old_snap), ec);  // best effort
  }

  // 3. Reclaim journal space. A crash anywhere in here leaves offsets
  // pointing at or past EOF, which recovery reads as "suffix empty" —
  // correct, everything is in the snapshot; start_recording() then
  // normalizes the manifest.
  auto reclaim = [this](Journal& j) {
    j.sync();
    j.close();
    std::error_code ec;
    fs::resize_file(j.path(), 0, ec);
    j.reset(open_file(j.path()));
  };
  reclaim(*ctl_);
  for (const auto& j : journals_) reclaim(*j);
  ctl_offset_ = 0;
  shard_offsets_.assign(num_shards_, 0);
  write_manifest(current_manifest());

  live_bytes_.store(0, std::memory_order_relaxed);
  if (obs_.compactions != nullptr) obs_.compactions->inc();
  if (obs_.live_bytes != nullptr) obs_.live_bytes->set(0.0);
  if (obs_.epoch != nullptr) obs_.epoch->set(static_cast<double>(epoch_));
}

}  // namespace oak::durability
