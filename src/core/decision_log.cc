#include "core/decision_log.h"

namespace oak::core {

std::string to_string(DecisionType t) {
  switch (t) {
    case DecisionType::kActivate: return "activate";
    case DecisionType::kDeactivate: return "deactivate";
    case DecisionType::kAdvanceAlternative: return "advance-alternative";
    case DecisionType::kKeepAlternative: return "keep-alternative";
    case DecisionType::kExpire: return "expire";
    case DecisionType::kServeModified: return "serve-modified";
    case DecisionType::kRaceWinner: return "race-winner";
  }
  return "?";
}

util::Json decision_to_json(const Decision& d) {
  util::JsonObject o;
  o["t"] = d.time;
  o["user"] = d.user_id;
  o["rule"] = d.rule_id;
  o["type"] = static_cast<int>(d.type);
  o["violator"] = d.violator_ip;
  o["distance"] = d.distance;
  o["alt"] = d.alternative_index;
  return util::Json(std::move(o));
}

Decision decision_from_json(const util::Json& j) {
  Decision d;
  d.time = j.at("t").as_number();
  d.user_id = j.at("user").as_string();
  d.rule_id = static_cast<int>(j.at("rule").as_int());
  d.type = static_cast<DecisionType>(j.at("type").as_int());
  d.violator_ip = j.at("violator").as_string();
  d.distance = j.at("distance").as_number();
  d.alternative_index = static_cast<std::size_t>(j.at("alt").as_int());
  return d;
}

util::Json context_to_json(const ReportContext& c) {
  util::JsonObject o;
  o["t"] = c.time;
  o["user"] = c.user_id;
  o["ip"] = c.client_ip;
  o["plt"] = c.plt_s;
  if (c.serve_only) o["serve"] = true;
  util::JsonArray rules;
  for (const auto& m : c.rule_matches) {
    util::JsonObject mo;
    mo["rule"] = m.rule_id;
    mo["sev"] = m.severity;
    mo["violator"] = m.violator_ip;
    rules.push_back(std::move(mo));
  }
  o["rules"] = std::move(rules);
  util::JsonArray alts;
  for (const auto& m : c.alt_matches) {
    util::JsonObject mo;
    mo["rule"] = m.rule_id;
    mo["alt"] = m.alt_index;
    mo["sev"] = m.severity;
    mo["violator"] = m.violator_ip;
    alts.push_back(std::move(mo));
  }
  o["alts"] = std::move(alts);
  return util::Json(std::move(o));
}

ReportContext context_from_json(const util::Json& j) {
  ReportContext c;
  c.time = j.at("t").as_number();
  c.user_id = j.at("user").as_string();
  c.client_ip = j.at("ip").as_string();
  c.plt_s = j.at("plt").as_number();
  if (const auto* s = j.find("serve")) c.serve_only = s->as_bool();
  for (const auto& m : j.at("rules").as_array()) {
    ContextRuleMatch rm;
    rm.rule_id = static_cast<int>(m.at("rule").as_int());
    rm.severity = m.at("sev").as_number();
    rm.violator_ip = m.at("violator").as_string();
    c.rule_matches.push_back(std::move(rm));
  }
  for (const auto& m : j.at("alts").as_array()) {
    ContextAltMatch am;
    am.rule_id = static_cast<int>(m.at("rule").as_int());
    am.alt_index = static_cast<std::size_t>(m.at("alt").as_int());
    am.severity = m.at("sev").as_number();
    am.violator_ip = m.at("violator").as_string();
    c.alt_matches.push_back(std::move(am));
  }
  return c;
}

void DecisionLog::record(Decision d) { entries_.push_back(std::move(d)); }

void DecisionLog::record_context(ReportContext c) {
  contexts_.push_back(std::move(c));
}

std::vector<Decision> DecisionLog::by_type(DecisionType t) const {
  std::vector<Decision> out;
  for (const auto& d : entries_) {
    if (d.type == t) out.push_back(d);
  }
  return out;
}

std::size_t DecisionLog::count(DecisionType t) const {
  std::size_t n = 0;
  for (const auto& d : entries_) {
    if (d.type == t) ++n;
  }
  return n;
}

std::map<int, std::set<std::string>> DecisionLog::users_activating() const {
  std::map<int, std::set<std::string>> out;
  for (const auto& d : entries_) {
    if (d.type == DecisionType::kActivate) out[d.rule_id].insert(d.user_id);
  }
  return out;
}

std::map<int, std::size_t> DecisionLog::activations_per_rule() const {
  std::map<int, std::size_t> out;
  for (const auto& d : entries_) {
    if (d.type == DecisionType::kActivate) out[d.rule_id]++;
  }
  return out;
}

util::Json DecisionLog::to_json() const {
  util::JsonObject o;
  util::JsonArray decisions;
  for (const auto& d : entries_) decisions.push_back(decision_to_json(d));
  o["decisions"] = std::move(decisions);
  if (!contexts_.empty()) {
    util::JsonArray contexts;
    for (const auto& c : contexts_) contexts.push_back(context_to_json(c));
    o["contexts"] = std::move(contexts);
  }
  return util::Json(std::move(o));
}

DecisionLog DecisionLog::from_json(const util::Json& j) {
  DecisionLog log;
  for (const auto& d : j.at("decisions").as_array()) {
    log.record(decision_from_json(d));
  }
  if (const auto* c = j.find("contexts")) {
    for (const auto& cj : c->as_array()) {
      log.record_context(context_from_json(cj));
    }
  }
  return log;
}

}  // namespace oak::core
