#include "core/decision_log.h"

namespace oak::core {

std::string to_string(DecisionType t) {
  switch (t) {
    case DecisionType::kActivate: return "activate";
    case DecisionType::kDeactivate: return "deactivate";
    case DecisionType::kAdvanceAlternative: return "advance-alternative";
    case DecisionType::kKeepAlternative: return "keep-alternative";
    case DecisionType::kExpire: return "expire";
    case DecisionType::kServeModified: return "serve-modified";
  }
  return "?";
}

void DecisionLog::record(Decision d) { entries_.push_back(std::move(d)); }

std::vector<Decision> DecisionLog::by_type(DecisionType t) const {
  std::vector<Decision> out;
  for (const auto& d : entries_) {
    if (d.type == t) out.push_back(d);
  }
  return out;
}

std::size_t DecisionLog::count(DecisionType t) const {
  std::size_t n = 0;
  for (const auto& d : entries_) {
    if (d.type == t) ++n;
  }
  return n;
}

std::map<int, std::set<std::string>> DecisionLog::users_activating() const {
  std::map<int, std::set<std::string>> out;
  for (const auto& d : entries_) {
    if (d.type == DecisionType::kActivate) out[d.rule_id].insert(d.user_id);
  }
  return out;
}

std::map<int, std::size_t> DecisionLog::activations_per_rule() const {
  std::map<int, std::size_t> out;
  for (const auto& d : entries_) {
    if (d.type == DecisionType::kActivate) out[d.rule_id]++;
  }
  return out;
}

}  // namespace oak::core
