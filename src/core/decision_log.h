// The Oak decision log: every activation, deactivation, history verdict and
// page modification, timestamped and per-user.
//
// The paper leans on this twice: operationally ("the server also maintains
// log information on ... the activation and removal of rules", §5) and as a
// product feature — "effectively using the performance reports of Oak as an
// offline auditing tool" (§6). Fig. 14 / Table 3 are computed from exactly
// this log.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace oak::core {

enum class DecisionType {
  kActivate,         // rule switched on for a user
  kDeactivate,       // history verdict: alternative worse than original
  kAdvanceAlternative,  // history verdict: try the next alternative
  kKeepAlternative,  // alternative violated but still beats the original
  kExpire,           // TTL elapsed
  kServeModified,    // a page was served with >=1 text edit
};

std::string to_string(DecisionType t);

struct Decision {
  double time = 0.0;
  std::string user_id;
  int rule_id = 0;
  DecisionType type = DecisionType::kActivate;
  std::string violator_ip;  // when triggered by a violation
  double distance = 0.0;    // MAD distance involved in the decision
  std::size_t alternative_index = 0;
};

class DecisionLog {
 public:
  void record(Decision d);

  const std::vector<Decision>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  std::vector<Decision> by_type(DecisionType t) const;
  std::size_t count(DecisionType t) const;

  // Distinct users that ever activated each rule (Fig. 14's numerator).
  std::map<int, std::set<std::string>> users_activating() const;
  // Activation event counts per rule.
  std::map<int, std::size_t> activations_per_rule() const;

 private:
  std::vector<Decision> entries_;
};

}  // namespace oak::core
