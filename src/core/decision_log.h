// The Oak decision log: every activation, deactivation, history verdict and
// page modification, timestamped and per-user.
//
// The paper leans on this twice: operationally ("the server also maintains
// log information on ... the activation and removal of rules", §5) and as a
// product feature — "effectively using the performance reports of Oak as an
// offline auditing tool" (§6). Fig. 14 / Table 3 are computed from exactly
// this log.
//
// Beyond audit, the log is the substrate for offline policy what-if replay
// (core/policy_replay.h, tools/policy_replay): when
// Policy::record_context is on, every processed report also records a
// ReportContext — the policy-independent inputs a candidate policy needs to
// re-decide the same stream (which rules matched which violators at what
// severity, per alternative). Replaying contexts through a different
// PolicyEngine yields the counterfactual decision stream without re-running
// detection or the matcher.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.h"

namespace oak::core {

enum class DecisionType {
  kActivate,         // rule switched on for a user
  kDeactivate,       // history verdict: alternative worse than original
  kAdvanceAlternative,  // history verdict: try the next alternative
  kKeepAlternative,  // alternative violated but still beats the original
  kExpire,           // TTL elapsed
  kServeModified,    // a page was served with >=1 text edit
  kRaceWinner,       // racing policy: a rule's cohort race decided
};

std::string to_string(DecisionType t);

struct Decision {
  double time = 0.0;
  std::string user_id;
  int rule_id = 0;
  DecisionType type = DecisionType::kActivate;
  std::string violator_ip;  // when triggered by a violation
  double distance = 0.0;    // MAD distance involved in the decision
  std::size_t alternative_index = 0;
};

// Shared JSON codec for decisions — the persistence snapshot and the replay
// log file must agree on these bytes (keys t/user/rule/type/violator/
// distance/alt; type as integer so new enum values pass through).
util::Json decision_to_json(const Decision& d);
Decision decision_from_json(const util::Json& j);

// --- Replayable report context --------------------------------------------

// One (rule, violator) match from a processed report: the rule's default
// text matched this violator at this severity. First-match only, mirroring
// consider_activations' "first matching violator wins".
struct ContextRuleMatch {
  int rule_id = 0;
  double severity = 0.0;
  std::string violator_ip;
};

// Same, for one alternative of a rule (review_active_rules' input): the
// alternative's text matched this violator. Recorded for *every*
// alternative of every rule regardless of what is active, because a
// candidate policy may have a different alternative live at this point.
struct ContextAltMatch {
  int rule_id = 0;
  std::size_t alt_index = 0;
  double severity = 0.0;
  std::string violator_ip;
};

// Everything a policy needs to re-decide one report (or one page serve —
// serve_only ticks exist because rule expiry is evaluated on serves too,
// and a replay that skipped them would expire rules later than the live
// server did).
struct ReportContext {
  double time = 0.0;
  std::string user_id;
  std::string client_ip;
  double plt_s = 0.0;       // <= 0: rejected by the accumulator gate
  bool serve_only = false;  // page serve tick, no report attached
  std::vector<ContextRuleMatch> rule_matches;
  std::vector<ContextAltMatch> alt_matches;
};

util::Json context_to_json(const ReportContext& c);
ReportContext context_from_json(const util::Json& j);

class DecisionLog {
 public:
  void record(Decision d);
  void record_context(ReportContext c);

  const std::vector<Decision>& entries() const { return entries_; }
  const std::vector<ReportContext>& contexts() const { return contexts_; }
  std::size_t size() const { return entries_.size(); }
  void clear() {
    entries_.clear();
    contexts_.clear();
  }

  std::vector<Decision> by_type(DecisionType t) const;
  std::size_t count(DecisionType t) const;

  // Distinct users that ever activated each rule (Fig. 14's numerator).
  std::map<int, std::set<std::string>> users_activating() const;
  // Activation event counts per rule.
  std::map<int, std::size_t> activations_per_rule() const;

  // Full log as JSON: {"decisions": [...], "contexts": [...]} ("contexts"
  // omitted when none were recorded, keeping pre-context logs byte-stable).
  util::Json to_json() const;
  static DecisionLog from_json(const util::Json& j);

 private:
  std::vector<Decision> entries_;
  std::vector<ReportContext> contexts_;
};

}  // namespace oak::core
