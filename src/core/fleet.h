// Fleet: one Oak deployment fronting many sites.
//
// The paper evaluates Oak per site, but an operator (or a hosting platform)
// runs it for a portfolio — the §5.3 experiment itself manages ten sites.
// Fleet owns one ShardedOakServer per site host, applies a shared base
// configuration, installs every handler, and aggregates auditing and
// persistence across the portfolio. Profiles remain strictly per site:
// Oak's identity cookie is scoped to the origin, exactly as in the paper.
//
// install_all() registers the *sharded* (thread-safe) handlers, so a fleet
// can be driven from request threads directly — there is no unsynchronized
// side door on the request plane. Single-threaded phases (tests, harness
// setup) may still reach a specific shard via ShardedOakServer::shard().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analytics.h"
#include "core/sharded_server.h"

namespace oak::core {

class Fleet {
 public:
  Fleet(page::WebUniverse& universe, OakConfig base_config = {},
        std::size_t shards_per_site = ShardedOakServer::kDefaultShards)
      : universe_(universe),
        base_config_(std::move(base_config)),
        shards_per_site_(shards_per_site) {}

  // Create (or fetch) the server for `site_host`. New servers start from
  // the fleet's base configuration.
  ShardedOakServer& site(const std::string& site_host);
  const ShardedOakServer* find(const std::string& site_host) const;
  bool has(const std::string& site_host) const {
    return servers_.count(site_host) > 0;
  }
  std::size_t size() const { return servers_.size(); }
  std::vector<std::string> hosts() const;

  // Register every site's thread-safe handler on the universe.
  void install_all();

  // Portfolio roll-up of the per-site audits.
  struct FleetSummary {
    std::size_t sites = 0;
    std::size_t users = 0;
    std::size_t reports = 0;
    std::size_t rules = 0;
    std::size_t total_activations = 0;
  };
  FleetSummary summary() const;
  // Per-site audits, keyed by host. `now` is the audit time (see
  // SiteAnalytics: it classifies expired-but-unreaped rules correctly).
  std::map<std::string, SiteAnalytics> audit_all(
      std::optional<double> now = std::nullopt) const;

  // --- Observability. The fleet-side registry is shared by the browsers
  // and the network harness (see BrowserConfig::metrics and
  // net::Network::set_metrics); the server planes live in the per-site
  // shard registries. metrics_snapshot() merges everything — fleet registry
  // plus every site's merged shard snapshot — into one exposition.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }
  obs::MetricsSnapshot metrics_snapshot() const;
  std::string metrics_text() const;
  util::Json metrics_json() const;

  // One snapshot covering every site ({"sites": {host: snapshot}}).
  util::Json export_state() const;
  // Restores every site present in the snapshot; sites must already exist
  // in the fleet (rules are configuration). Unknown hosts in the snapshot
  // throw util::JsonError; fleet sites absent from the snapshot are left
  // untouched.
  void import_state(const util::Json& snapshot);

 private:
  page::WebUniverse& universe_;
  OakConfig base_config_;
  std::size_t shards_per_site_;
  std::map<std::string, std::unique_ptr<ShardedOakServer>> servers_;
  obs::MetricsRegistry metrics_;
};

}  // namespace oak::core
