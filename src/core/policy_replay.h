// Offline policy what-if replay (the evidence half of the policy engine).
//
// When Policy::record_context is on, the decision log carries one
// ReportContext per processed report (plus serve ticks): the policy-
// independent inputs — which rules matched which violators at what severity,
// for the default text and for every alternative. This kernel re-runs that
// context stream through a *candidate* PolicyEngine and produces:
//
//   * the counterfactual decision stream (what the candidate policy would
//     have activated/advanced/deactivated, report by report), and
//   * a ReplayScore: violation pressure, how much of it the candidate
//     mitigated, and an estimated PLT built by substituting the treated
//     cohort's observed outcome wherever the candidate had a mitigation
//     live that the recording actually measured.
//
// Replay is deterministic by construction: it touches no clock, no RNG and
// no network — two runs over the same log are byte-identical (the CI
// policy-replay job asserts exactly this). It differs from
// core/trace.h's ReportTrace: a trace replays raw *reports* through a full
// server (detection, matcher and all) and needs the WebUniverse; a context
// replay starts after detection, so it can re-decide with nothing but the
// log file — the right shape for an operator laptop.
//
// Fidelity contract, pinned by tests/policy_replay_test.cc: replaying a log
// through the engine configuration that recorded it reproduces the live
// decision stream exactly (minus kServeModified, which is a serving-plane
// event the context stream does not model).
//
// Counterfactual PLT scoring and its limits: the recorded reports embed
// whatever mitigations the *recording* policy made, so a candidate that
// activates earlier cannot observe the page loads it would have changed.
// The estimator is therefore explicitly labeled an estimate:
// `estimated_mean_plt_s` replaces a violating report's PLT with the
// concurrent *healthy* mean — the mean PLT of non-violating reports in the
// same time bucket (default 300 s) — whenever the candidate had a
// mitigation live for the matched rule when the report arrived. A report
// that still shows a rule match was, by construction, not mitigated when it
// was recorded (a live mitigation rewrites the violator out of the page),
// so the substitution asks: what did a clean page load cost at that moment?
// Buckets with no healthy sample keep the observed PLT. See
// docs/POLICIES.md for the workflow and the caveats.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/decision_log.h"
#include "core/policy.h"
#include "core/rule.h"
#include "core/user_store.h"
#include "util/json.h"

namespace oak::core {

struct ReplayScore {
  std::size_t reports = 0;      // contexts replayed (serve ticks excluded)
  std::size_t serve_ticks = 0;
  std::size_t violation_reports = 0;  // reports with >= 1 rule match
  // Violating reports split by whether the candidate policy had a
  // mitigation (an active rule for a matching rule id) live when the
  // report arrived.
  std::size_t mitigated_reports = 0;
  std::size_t unmitigated_reports = 0;
  std::size_t activations = 0;
  std::size_t deactivations = 0;
  std::size_t expirations = 0;
  std::size_t race_winners = 0;
  // Mean PLT of the recorded stream, and the counterfactual estimate after
  // treated-mean substitution (== observed when nothing was substituted).
  double observed_mean_plt_s = 0.0;
  double estimated_mean_plt_s = 0.0;
  std::size_t substituted_reports = 0;

  util::Json to_json() const;
};

// Re-decides a recorded context stream under one candidate policy.
//
// Mirrors OakServer's per-report ordering exactly: expire -> racing
// observation -> history review -> activation consideration. All state is
// per-user UserProfile plus the engine's derived aggregates; nothing reads
// a clock.
class PolicyReplayer {
 public:
  // `rules` must carry the ids the log refers to. Throws
  // std::invalid_argument for an inconsistent policy (same checks as the
  // live engine) or a rule naming an unknown strategy.
  PolicyReplayer(std::vector<Rule> rules, const Policy& policy,
                 HistoryMode history = HistoryMode::kMinDistance);
  ~PolicyReplayer();

  // Feed contexts in recorded order.
  void step(const ReportContext& ctx);

  // The counterfactual decision stream.
  const DecisionLog& log() const { return log_; }
  const PolicyEngine& engine() const { return *engine_; }

  // Scoring over everything stepped so far. `bucket_s` is the time-bucket
  // width for treated-mean substitution.
  ReplayScore score(double bucket_s = 300.0) const;

  // Deterministic result document: {"score": ..., "decisions": [...]}.
  util::Json result_json(double bucket_s = 300.0) const;

 private:
  const Rule* rule(int id) const;
  UserProfile& profile(const ReportContext& ctx);
  void expire_rules(UserProfile& user, double now);
  void review_active(UserProfile& user, const ReportContext& ctx);
  void consider_activations(UserProfile& user, const ReportContext& ctx);

  std::vector<Rule> rules_;
  Policy policy_;  // owned: the engine borrows it (declared before engine_)
  HistoryMode history_;
  std::unique_ptr<PolicyEngine> engine_;
  std::map<std::string, UserProfile> users_;  // deterministic iteration
  DecisionLog log_;

  // Per-report outcome retained for scoring. `mitigated_live` means the
  // candidate policy had the matching rule active when the report arrived —
  // the report's PLT would counterfactually have been a mitigated load.
  struct Sample {
    double time = 0.0;
    double plt_s = 0.0;  // 0 = rejected/no PLT
    bool violating = false;
    bool mitigated_live = false;
  };
  std::vector<Sample> samples_;
  std::vector<Decision> race_events_;  // scratch for observe_report
  std::size_t serve_ticks_ = 0;
};

// Convenience: replay a full context stream and score it.
ReplayScore replay_and_score(std::vector<Rule> rules, const Policy& policy,
                             HistoryMode history,
                             const std::vector<ReportContext>& contexts,
                             double bucket_s = 300.0);

}  // namespace oak::core
