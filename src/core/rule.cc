#include "core/rule.h"

#include <cctype>

namespace oak::core {

std::string to_string(RuleType t) {
  switch (t) {
    case RuleType::kRemove: return "remove";
    case RuleType::kAlternativeSource: return "alternative-source";
    case RuleType::kAlternativeObject: return "alternative-object";
  }
  return "?";
}

bool Rule::validate(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  if (default_text.empty()) return fail("default text must not be empty");
  if (type == RuleType::kRemove) {
    if (!alternatives.empty()) {
      return fail("type-1 (remove) rules take no alternatives");
    }
  } else {
    if (alternatives.empty()) {
      return fail("type-2/3 rules need at least one alternative");
    }
    for (const auto& a : alternatives) {
      if (a.empty()) return fail("alternative text must not be empty");
      if (a == default_text) {
        return fail("alternative must differ from the default");
      }
    }
  }
  if (ttl_s < 0.0) return fail("ttl must be >= 0");
  if (min_violations < 1) return fail("min_violations must be >= 1");
  for (const auto& s : sub_rules) {
    if (s.from.empty()) return fail("sub-rule 'from' must not be empty");
  }
  return true;
}

bool Rule::is_domain_rule() const {
  if (default_text.empty()) return false;
  bool has_dot = false;
  for (char c : default_text) {
    if (c == '.') {
      has_dot = true;
    } else if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-')) {
      return false;
    }
  }
  return has_dot;
}

Rule make_removal_rule(std::string name, std::string default_text,
                       double ttl_s, std::string scope) {
  Rule r;
  r.name = std::move(name);
  r.type = RuleType::kRemove;
  r.default_text = std::move(default_text);
  r.ttl_s = ttl_s;
  r.scope = util::Scope(std::move(scope));
  return r;
}

Rule make_source_rule(std::string name, std::string default_text,
                      std::vector<std::string> alternatives, double ttl_s,
                      std::string scope) {
  Rule r;
  r.name = std::move(name);
  r.type = RuleType::kAlternativeSource;
  r.default_text = std::move(default_text);
  r.alternatives = std::move(alternatives);
  r.ttl_s = ttl_s;
  r.scope = util::Scope(std::move(scope));
  return r;
}

Rule make_domain_rule(std::string name, std::string domain,
                      std::vector<std::string> alt_domains, double ttl_s,
                      std::string scope) {
  return make_source_rule(std::move(name), std::move(domain),
                          std::move(alt_domains), ttl_s, std::move(scope));
}

}  // namespace oak::core
