#include "core/grouping.h"

#include <algorithm>

#include "util/stats.h"

namespace oak::core {

double ServerObservation::avg_small_time() const {
  return util::mean(small_times);
}

double ServerObservation::avg_large_tput() const {
  return util::mean(large_tputs);
}

namespace {

// Open-addressing index from IP bytes to observation slot. Replaces the
// seed's linear scan over observations (O(servers) string compares per
// entry). Interned decoder output makes the pointer fast path hit for every
// repeated IP; byte equality keeps PerfReport-backed views correct too.
class IpIndex {
 public:
  IpIndex() : slots_(16, kEmpty), mask_(15) {}

  // Returns the observation index for `ip`, or `size` (== "append a new
  // observation") after reserving the slot.
  std::size_t find_or_insert(std::string_view ip,
                             const std::vector<ServerObservation>& out) {
    if (out.size() * 10 >= slots_.size() * 7) grow(out);
    std::size_t i = hash(ip) & mask_;
    while (slots_[i] != kEmpty) {
      const ServerObservation& o = out[slots_[i]];
      if (o.ip.data() == ip.data() || o.ip == ip) return slots_[i];
      i = (i + 1) & mask_;
    }
    slots_[i] = out.size();
    return out.size();
  }

 private:
  static constexpr std::size_t kEmpty = std::size_t(-1);

  static std::size_t hash(std::string_view s) {
    std::size_t h = 1469598103934665603ull;  // FNV-1a
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  void grow(const std::vector<ServerObservation>& out) {
    mask_ = slots_.size() * 2 - 1;
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    slots_.resize(mask_ + 1, kEmpty);
    for (std::size_t idx = 0; idx < out.size(); ++idx) {
      std::size_t i = hash(out[idx].ip) & mask_;
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = idx;
    }
  }

  std::vector<std::size_t> slots_;
  std::size_t mask_;
};

// Sorted-unique insert — byte-identical to the old std::set<std::string>
// iteration order, without the node allocations.
void insert_domain(std::vector<std::string>& domains, std::string_view host) {
  auto it = std::lower_bound(
      domains.begin(), domains.end(), host,
      [](const std::string& a, std::string_view b) { return a.compare(b) < 0; });
  if (it != domains.end() && it->compare(host) == 0) return;
  domains.insert(it, std::string(host));
}

}  // namespace

std::vector<ServerObservation> group_by_server(
    const browser::ReportView& report, std::uint64_t small_threshold_bytes) {
  std::vector<ServerObservation> out;
  IpIndex index;
  for (const auto& e : report.entries) {
    // Resolution failures contacted no server: there is no IP to group by.
    if (e.ip.empty()) continue;
    const std::size_t idx = index.find_or_insert(e.ip, out);
    if (idx == out.size()) {
      out.push_back(ServerObservation{});
      out.back().ip = std::string(e.ip);
    }
    ServerObservation& obs = out[idx];
    insert_domain(obs.domains, e.host);
    obs.object_count += 1;
    obs.byte_count += e.size;
    if (e.failed()) {
      // Time burned before the failure is not a service-time sample; the
      // attempt is tallied for the hard-failure rate instead.
      obs.failure_count += 1;
    } else if (e.size < small_threshold_bytes) {
      obs.small_times.push_back(e.time_s);
    } else if (e.time_s > 0.0) {
      obs.large_tputs.push_back(static_cast<double>(e.size) / e.time_s);
    }
  }
  return out;
}

std::vector<ServerObservation> group_by_server(
    const browser::PerfReport& report, std::uint64_t small_threshold_bytes) {
  return group_by_server(browser::ReportView::of(report),
                         small_threshold_bytes);
}

}  // namespace oak::core
