#include "core/grouping.h"

#include "util/stats.h"

namespace oak::core {

double ServerObservation::avg_small_time() const {
  return util::mean(small_times);
}

double ServerObservation::avg_large_tput() const {
  return util::mean(large_tputs);
}

std::vector<ServerObservation> group_by_server(
    const browser::PerfReport& report, std::uint64_t small_threshold_bytes) {
  std::vector<ServerObservation> out;
  auto find = [&](const std::string& ip) -> ServerObservation& {
    for (auto& o : out) {
      if (o.ip == ip) return o;
    }
    out.push_back(ServerObservation{});
    out.back().ip = ip;
    return out.back();
  };
  for (const auto& e : report.entries) {
    ServerObservation& obs = find(e.ip);
    obs.domains.insert(e.host);
    obs.object_count += 1;
    obs.byte_count += e.size;
    if (e.size < small_threshold_bytes) {
      obs.small_times.push_back(e.time_s);
    } else if (e.time_s > 0.0) {
      obs.large_tputs.push_back(static_cast<double>(e.size) / e.time_s);
    }
  }
  return out;
}

}  // namespace oak::core
