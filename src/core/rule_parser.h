// Text format for rule files.
//
// The paper presents rules as operator-authored configuration (§4.1 shows a
// tuple-style example). We use an equivalent but unambiguous block syntax —
// the paper's nested unescaped quotes do not survive a grammar:
//
//   # comment
//   rule "jquery-cdn" {
//     type: 2
//     default: "<script src=\"http://s1.com/jquery.js\"></script>"
//     alt: "<script src=\"http://s2.net/jquery.js\"></script>"
//     alt: "<script src=\"http://s3.org/jquery.js\"></script>"
//     ttl: 0            # seconds; 0 = never expire
//     scope: "*"        # glob over page paths
//     min_violations: 1
//     sub: "s1.com/skin.css" -> "s2.net/skin.css"
//   }
//
// `type` is the paper's 1/2/3. Multiple `alt:` lines express the §4.2.4
// multiple-alternatives policy. Strings use C-style escapes (\" \\ \n \t).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/rule.h"

namespace oak::core {

class RuleParseError : public std::runtime_error {
 public:
  RuleParseError(std::size_t line, const std::string& what)
      : std::runtime_error("rule parse error (line " + std::to_string(line) +
                           "): " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// Parse a rule file. Throws RuleParseError; also rejects rules that fail
// Rule::validate().
std::vector<Rule> parse_rules(const std::string& text);

// Render rules back into the file format (round-trips through parse_rules).
std::string format_rules(const std::vector<Rule>& rules);

}  // namespace oak::core
