// Thread-safe front for an OakServer — the single-mutex baseline.
//
// The paper's prototype is "a multi-threaded server in Python" (§5): page
// requests and report POSTs arrive concurrently. OakServer itself is a
// single-threaded state machine (simple to reason about, trivially
// deterministic for the experiments); ConcurrentOakServer adds the locking
// needed to drive one from many request threads.
//
// Locking model: one mutex over all mutable state — no lock ordering to get
// wrong, no torn profiles, and no scaling either: every core funnels
// through the same lock. Production serving uses ShardedOakServer
// (core/sharded_server.h), which partitions profiles into lock shards; this
// wrapper is retained as the baseline that bench/load_concurrent measures
// the sharded path against.
#pragma once

#include <mutex>

#include "core/analytics.h"
#include "core/oak_server.h"

namespace oak::core {

class ConcurrentOakServer {
 public:
  ConcurrentOakServer(page::WebUniverse& universe, std::string site_host,
                      OakConfig cfg = {})
      : server_(universe, std::move(site_host), cfg) {}

  int add_rule(Rule rule) {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.add_rule(std::move(rule));
  }

  bool remove_rule(int rule_id, double now) {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.remove_rule(rule_id, now);
  }

  http::Response handle(const http::Request& req, double now) {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.handle(req, now);
  }

  // Register this server as the universe handler. The handler captures
  // `this`; the wrapper must outlive the universe's use of it.
  void install() {
    server_.universe().set_handler(
        server_.site_host(), [this](const http::Request& req, double now) {
          return handle(req, now);
        });
  }

  // Consistent point-in-time snapshot (for persistence or failover).
  util::Json export_state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.export_state();
  }

  void import_state(const util::Json& snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    server_.import_state(snapshot);
  }

  // Consistent audit (copies all derived stats while holding the lock).
  SiteAnalytics audit() const {
    std::lock_guard<std::mutex> lock(mu_);
    return SiteAnalytics(server_);
  }

  std::size_t user_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.user_count();
  }

  std::size_t reports_processed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return server_.reports_processed();
  }

  // Escape hatch for single-threaded phases (setup, assertions in tests).
  // Callers must guarantee no concurrent handle() calls while using it.
  OakServer& unsynchronized() { return server_; }

 private:
  mutable std::mutex mu_;
  OakServer server_;
};

}  // namespace oak::core
