#include "core/modifier.h"

#include "html/extract.h"
#include "util/strings.h"
#include "util/url.h"

namespace oak::core {

namespace {

// Derive alias descriptors for a type-2 rewrite of `def` -> `alt`.
// Literal-block rules map the URLs inside the blocks pairwise; domain rules
// map the hostnames.
void collect_aliases(const Rule& rule, const std::string& alt,
                     std::vector<std::string>& out) {
  if (rule.type != RuleType::kAlternativeSource) return;
  if (rule.is_domain_rule()) {
    out.push_back("host:" + alt + " host:" + rule.default_text);
    return;
  }
  auto def_refs = html::extract_references(rule.default_text);
  auto alt_refs = html::extract_references(alt);
  const std::size_t n = std::min(def_refs.size(), alt_refs.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(alt_refs[i].url + " " + def_refs[i].url);
  }
}

}  // namespace

std::size_t ModifiedPage::total_replacements() const {
  std::size_t n = 0;
  for (const auto& r : records) n += r.replacements;
  return n;
}

ModifiedPage apply_rules(const std::string& html, const std::string& page_path,
                         const std::vector<AppliedRule>& active) {
  ModifiedPage out;
  out.html = html;
  for (const auto& applied : active) {
    const Rule& rule = *applied.rule;
    if (!rule.scope.matches(page_path)) continue;

    std::size_t count = 0;
    if (rule.type == RuleType::kRemove) {
      count = util::replace_all(out.html, rule.default_text, "");
    } else {
      const std::size_t idx =
          applied.alternative_index < rule.alternatives.size()
              ? applied.alternative_index
              : rule.alternatives.size() - 1;
      const std::string& alt = rule.alternatives[idx];
      count = util::replace_all(out.html, rule.default_text, alt);
      if (count > 0) collect_aliases(rule, alt, out.aliases);
    }
    if (count > 0) {
      // Sub-rules fire only when the parent actually changed the page.
      for (const auto& sub : rule.sub_rules) {
        util::replace_all(out.html, sub.from, sub.to);
      }
    }
    out.records.push_back(ModificationRecord{rule.id, count});
  }
  return out;
}

}  // namespace oak::core
