// Configuration knobs for oak::durability (core/durability.h), split out so
// OakConfig can embed them without pulling the journal machinery into every
// core header.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace oak::durability {

class AppendFile;

// Opens the file at `path` for appending. The default (a null factory)
// opens a real PosixFile; tests substitute FaultFile-wrapped files to
// inject short writes and mid-record crashes (the storage-side sibling of
// net::FaultInjector).
using FileFactory =
    std::function<std::unique_ptr<AppendFile>(const std::string& path)>;

struct Options {
  // Master switch. Off (the default) leaves ShardedOakServer exactly as it
  // was: in-memory state, explicit export_state()/import_state() only.
  bool enabled = false;

  // Directory holding MANIFEST, snapshot-<epoch>.json and the wal-*.log
  // journals. Created on first use. One directory per server instance —
  // two live servers sharing a directory corrupt each other.
  std::string dir;

  // Journal bytes appended since the last snapshot that trigger an
  // automatic compaction (snapshot + journal reset). Compaction locks every
  // shard for one consistent cut, so this trades recovery replay time
  // against compaction pause frequency.
  std::uint64_t compact_threshold_bytes = 8ull << 20;

  // fsync (flush + fdatasync proxy) after every appended record. Default
  // off: appends reach the OS page cache immediately (surviving a process
  // crash, the fuzzed failure mode) and are fsynced at each compaction;
  // turning it on extends the guarantee to machine crashes at a large
  // per-record cost. The oak_journal_sync_seconds histogram prices it.
  bool fsync_each_append = false;

  // Test seam for storage fault injection; null means real files.
  FileFactory file_factory;
};

}  // namespace oak::durability
