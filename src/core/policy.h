// Operator policies (paper §4.2.4).
//
// Policies shape *when* rules may activate and *which* alternative is used:
//  * a minimum number of violations before activation (costly switches, e.g.
//    a contracted CDN, should happen sparingly);
//  * the progression over multiple alternatives (linear by default);
//  * an optional client filter ("Oak ... could further discriminate the
//    activation of rules based on client information, for example by IP
//    subnet").
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "net/address.h"

namespace oak::core {

enum class AlternativeSelection {
  kLinear,      // first alternative, then the next on re-activation
  kRoundRobin,  // wrap around instead of exhausting
};

struct Subnet {
  net::IpAddr base;
  int prefix_len = 0;
  bool contains(net::IpAddr ip) const { return ip.in_subnet(base, prefix_len); }
};

struct Policy {
  // Global default for rules that do not set their own min_violations.
  int default_min_violations = 1;
  AlternativeSelection selection = AlternativeSelection::kLinear;
  // When set, Oak only applies rules (and counts violations) for clients in
  // this subnet; everyone else gets the default page.
  std::optional<Subnet> client_filter;
  // When false, a rule deactivated by history is never re-activated for the
  // same user (conservative operators).
  bool allow_reactivation = true;

  // A/B holdback: this fraction of users (chosen by a stable hash of their
  // Oak id) always receives the default page. Their reports are still
  // analyzed, so the operator can measure Oak's lift — treated vs held-back
  // page load times — from the same telemetry (§6's auditing story).
  double holdback_fraction = 0.0;

  // True when `user_id` falls into the holdback group.
  bool in_holdback(const std::string& user_id) const;

  // Client-aware alternative selection ("Oak ... could further discriminate
  // the activation of rules based on client information, for example by IP
  // subnet", §4.2.4). Given the client's IP and the number of alternatives,
  // return the index to use; overrides `selection` when set. The §5.3
  // reproduction uses this to direct each client to its closest replica.
  std::function<std::size_t(const std::string& client_ip,
                            std::size_t num_alternatives)>
      alternative_selector;

  bool applies_to(const std::string& client_ip_text) const;
};

}  // namespace oak::core
