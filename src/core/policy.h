// The policy engine: who activates what, when, and with which alternative.
//
// The paper fixes one policy (§4.2.4): a minimum violation count before
// activation, linear progression through a rule's alternatives, and an
// optional client filter. That policy survives here — bit-for-bit — as the
// built-in "paper" strategy, but it is now one strategy among several
// behind a pluggable PolicyEngine:
//
//   paper       the §4.2.4 default: min-violation threshold, linear (or
//               round-robin) alternative progression, min-distance history.
//   racing      Go-With-The-Winner: users are split into two stable hash
//               cohorts; cohort 0 activates alternative 0, cohort 1
//               alternative 1. Post-activation PLT is accumulated per
//               cohort, and once both cohorts have enough samples the
//               lower-mean cohort's alternative becomes the winner — all
//               later activations use it.
//   hysteresis  the paper flow plus a per-(user, rule) cooldown after a
//               deactivation and a keep-margin on the history rule (the
//               alternative must be decisively worse before Oak moves on).
//   scoped      per-subnet routing: clients inside a configured subnet are
//               handled by one strategy, everyone else by a fallback.
//
// Strategies are selected *per rule* (`policy: "racing"` in the rule file)
// with a configurable default. Every strategy is deterministic: decisions
// are pure functions of (policy config, user id, rule, per-user profile
// state, report-derived inputs), so WAL replay and snapshot import
// reproduce them exactly. Racing's only cross-user state — the per-cohort
// PLT aggregates — is derived state: it folds per-user accumulators that
// live in the UserProfile (and therefore in every snapshot), and is rebuilt
// from them on import. See DESIGN.md §15 for the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/decision_log.h"
#include "core/rule.h"
#include "core/user_store.h"
#include "net/address.h"
#include "obs/metrics.h"
#include "util/flat_map.h"
#include "util/json.h"

namespace oak::core {

enum class AlternativeSelection {
  kLinear,      // first alternative, then the next on re-activation
  kRoundRobin,  // wrap around instead of exhausting
};

// What to do when an activated alternative itself becomes a violator.
// kMinDistance is the paper's §4.2.3 rule ("Oak then chooses the action
// which minimizes this distance"); the other two exist as ablation
// baselines. Lives here (not oak_server.h) because strategies weigh it.
enum class HistoryMode {
  kMinDistance,   // keep whichever side sits closer to the median
  kAlwaysKeep,    // never revert once switched
  kAlwaysRevert,  // any violation of the alternative reverts/advances
};

struct Subnet {
  net::IpAddr base;
  int prefix_len = 0;
  // prefix_len <= 0 matches every address; >= 32 demands exact equality
  // (so an over-long "/128" behaves as /32 rather than shifting out of
  // range). See docs/RULES.md for the boundary table.
  bool contains(net::IpAddr ip) const { return ip.in_subnet(base, prefix_len); }
  // "a.b.c.d/len"; bare "a.b.c.d" means /32.
  static std::optional<Subnet> parse(const std::string& text);
  std::string to_string() const;
};

// --- Strategy configuration (table-driven, deterministic) -----------------

enum class StrategyKind { kPaper, kRacing, kHysteresis, kScoped };

std::string to_string(StrategyKind k);
std::optional<StrategyKind> strategy_kind_from_string(const std::string& s);

struct RacingOptions {
  // Post-activation PLT samples required *per cohort* before the winner is
  // declared. Until then each cohort keeps exercising its own alternative.
  std::uint64_t min_samples = 25;
};

struct HysteresisOptions {
  // After a deactivation, the rule may not re-arm for that user until this
  // much simulated time has passed (re-activation attempts during the
  // window are suppressed and do not count toward min_violations).
  double cooldown_s = 900.0;
  // History-rule margin: the alternative is kept unless its violation
  // distance reaches keep_margin x the distance that triggered activation.
  // 1.0 reproduces the paper's min-distance comparison; >1 favors staying.
  double keep_margin = 1.5;
};

struct SubnetRoute {
  Subnet subnet;
  std::string strategy;  // must name a non-scoped strategy
};

struct StrategyConfig {
  std::string name;  // referenced by Rule::policy
  StrategyKind kind = StrategyKind::kPaper;
  RacingOptions racing;
  HysteresisOptions hysteresis;
  // kScoped only: first matching subnet wins; `fallback` (or the engine
  // default when empty) handles clients outside every route.
  std::vector<SubnetRoute> routes;
  std::string fallback;
};

// --- Policy: global knobs + the strategy table ----------------------------

struct Policy {
  // Global default for rules that do not set their own min_violations.
  int default_min_violations = 1;
  AlternativeSelection selection = AlternativeSelection::kLinear;
  // When set, Oak only applies rules (and counts violations) for clients in
  // this subnet; everyone else gets the default page.
  std::optional<Subnet> client_filter;
  // When false, a rule deactivated by history is never re-activated for the
  // same user (conservative operators).
  bool allow_reactivation = true;

  // A/B holdback: this fraction of users (chosen by a stable hash of their
  // Oak id) always receives the default page. Their reports are still
  // analyzed, so the operator can measure Oak's lift — treated vs held-back
  // page load times — from the same telemetry (§6's auditing story).
  // Boundary semantics: a user is held back iff
  // holdback_bucket(user_id) < holdback_fraction * 10'000, i.e. the
  // holdback group is the half-open bucket range [0, fraction * 10'000).
  double holdback_fraction = 0.0;

  // stable_hash(user_id) % 10'000 — the bucket the fraction is compared
  // against. Exposed so operators and the replay tooling can reason about
  // exactly which users fall on which side (docs/RULES.md).
  static std::uint32_t holdback_bucket(const std::string& user_id);

  // True when `user_id` falls into the holdback group.
  bool in_holdback(const std::string& user_id) const;

  // Client-aware alternative selection ("Oak ... could further discriminate
  // the activation of rules based on client information, for example by IP
  // subnet", §4.2.4). Given the client's IP and the number of alternatives,
  // return the index to use; overrides `selection` when set. The §5.3
  // reproduction uses this to direct each client to its closest replica.
  // Not serializable — replay and durability recovery rely on the named
  // strategy table instead.
  std::function<std::size_t(const std::string& client_ip,
                            std::size_t num_alternatives)>
      alternative_selector;

  bool applies_to(const std::string& client_ip_text) const;

  // Operator-defined strategy instances. The engine always registers the
  // built-ins "paper", "racing" and "hysteresis" (with the option defaults
  // above); entries here add new named instances or shadow the built-ins.
  std::vector<StrategyConfig> strategies;
  // Strategy for rules whose `policy` field is empty. Empty = "paper",
  // which is the seed behavior.
  std::string default_strategy;

  // Record a replayable ReportContext for every processed report and a
  // serve tick for every page serve (core/decision_log.h). Off by default:
  // recording costs matcher probes per (rule x alternative) and log memory.
  bool record_context = false;
};

// Deterministic JSON round-trip of everything above except
// alternative_selector (a live callback; documented non-serializable).
util::Json policy_to_json(const Policy& p);
Policy policy_from_json(const util::Json& j);

// --- The engine -----------------------------------------------------------

// Outcome of the §4.2.3 history review for one active rule.
enum class HistoryAction { kKeep, kAdvance, kDeactivate };

// A decided activation: which alternative to switch on, and (for racing)
// which cohort the user raced in (-1 when the strategy does not race).
struct ActivationChoice {
  std::size_t alternative_index = 0;
  int cohort = -1;
};

// Per-rule racing aggregate, introspectable by benches and tests.
struct RaceState {
  std::uint64_t count[2] = {0, 0};
  double plt_sum[2] = {0.0, 0.0};
  bool decided = false;  // both cohorts reached min_samples
  int winner = -1;       // cohort index with the lower mean PLT
  double mean(int cohort) const {
    return count[cohort] == 0 ? 0.0 : plt_sum[cohort] / double(count[cohort]);
  }
};

// The pluggable strategy interface. Implementations are stateless value
// objects configured at engine construction; all mutable state lives in the
// UserProfile (pending counts, cooldowns, race accumulators) or in the
// engine's derived racing aggregates, so strategies never hide state from
// snapshots.
class PolicyStrategy;

class PolicyEngine {
 public:
  // `policy` is borrowed, not copied: scalar knobs (default_min_violations,
  // selection, allow_reactivation, alternative_selector) read live, so
  // OakServer::config() mutations keep working exactly as before the
  // engine existed. The strategy *table* (strategies/default_strategy) is
  // materialized here and fixed for the engine's lifetime. `metrics` may be
  // null (instrumentation off). Throws std::invalid_argument on an
  // inconsistent strategy table (duplicate names, scoped routes naming
  // unknown or scoped strategies).
  PolicyEngine(const Policy& policy, obs::MetricsRegistry* metrics);
  ~PolicyEngine();

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  const Policy& policy() const { return *policy_; }

  // True when `name` resolves to a configured strategy (add_rule validates
  // Rule::policy against this).
  bool has_strategy(const std::string& name) const;
  // The strategy a rule resolves to for a given client (scoped strategies
  // route by client IP; everything else ignores it). Never null.
  const PolicyStrategy& strategy_for(const Rule& rule,
                                     const std::string& client_ip) const;

  // --- Decision points (called by OakServer / PolicyReplayer) ------------

  // A violator matched `rule` for `user` (rule neither active nor banned).
  // Counts the violation toward the threshold; returns the activation
  // choice once the threshold is met, nullopt otherwise. Mutates
  // user.pending_violations / next_alternative exactly as the seed did.
  std::optional<ActivationChoice> on_rule_violation(const Rule& rule,
                                                    UserProfile& user,
                                                    double severity,
                                                    double now);

  // The active alternative of `rule` matched a violator with distance
  // `alt_distance`. Decides keep / advance / deactivate under `history`.
  HistoryAction on_alternative_violation(const Rule& rule, UserProfile& user,
                                         const ActiveRule& active,
                                         double alt_distance,
                                         HistoryMode history);

  // Bookkeeping after a deactivation decided above: reactivation ban and
  // hysteresis cooldown.
  void on_deactivated(const Rule& rule, UserProfile& user, double now);

  // A report with an accepted (finite, positive) PLT arrived. Accumulates
  // racing cohort PLT for every raced active rule of this user; appends a
  // kRaceWinner decision to `events` the first time a rule's race decides.
  // `rule_of` resolves a rule id to the live rule (null = rule retired).
  void observe_report(UserProfile& user, double plt_s, double now,
                      const std::function<const Rule*(int)>& rule_of,
                      std::vector<Decision>* events);

  // --- Derived racing aggregates -----------------------------------------

  // Aggregates fold per-user accumulators; import/recovery rebuilds them.
  void reset_race_state();
  void fold_profile(const UserProfile& user);
  // Recompute decided/winner after folding (import/recovery). Aggregates
  // freeze at declaration time, so the recomputed verdicts are identical to
  // the live ones.
  void finalize_races(const std::function<const Rule*(int)>& rule_of);
  void erase_rule(int rule_id);
  std::optional<RaceState> race_state(int rule_id) const;
  // The per-cohort sample threshold a rule's race decides at (rule-wide: a
  // race has one threshold even under scoped routing).
  std::uint64_t race_min_samples(const Rule& rule) const;

  // Stable 0/1 cohort assignment for (user, rule) — a pure function, so
  // cohorts survive export/import and shard-count changes. Independent of
  // the holdback bucket by construction (different hash input).
  static int cohort_of(const std::string& user_id, int rule_id);

  // Instrumentation hooks for strategies (no-ops when metrics are off).
  void note_cooldown_suppressed();
  void note_hysteresis_keep();

 private:
  const PolicyStrategy* find_strategy(const std::string& name) const;

  const Policy* policy_;
  std::vector<std::unique_ptr<PolicyStrategy>> strategies_;
  // Racing aggregates per rule id; values are derived state (see above).
  // Flat and sorted: a handful of rules, iterated deterministically by
  // finalize_races.
  util::SmallFlatMap<int, RaceState> race_;

  struct Instruments {
    obs::Counter* decisions = nullptr;
    obs::Counter* activations = nullptr;
    obs::Counter* cooldown_suppressed = nullptr;
    obs::Counter* hysteresis_keeps = nullptr;
    obs::Counter* racing_activations = nullptr;
    obs::Counter* racing_winners = nullptr;
    obs::Counter* winner_activations = nullptr;
    obs::Counter* scoped_routed = nullptr;
  } obs_;

  friend class PolicyStrategy;
};

// --- Strategy interface (exposed for tests and the replay kernel) ---------

class PolicyStrategy {
 public:
  explicit PolicyStrategy(StrategyConfig cfg) : cfg_(std::move(cfg)) {}
  virtual ~PolicyStrategy() = default;

  const std::string& name() const { return cfg_.name; }
  StrategyKind kind() const { return cfg_.kind; }
  const StrategyConfig& config() const { return cfg_; }

  // Mirrors PolicyEngine::on_rule_violation for one resolved strategy.
  virtual std::optional<ActivationChoice> on_rule_violation(
      PolicyEngine& engine, const Rule& rule, UserProfile& user,
      double severity, double now) const = 0;

  virtual HistoryAction on_alternative_violation(PolicyEngine& engine,
                                                 const Rule& rule,
                                                 UserProfile& user,
                                                 const ActiveRule& active,
                                                 double alt_distance,
                                                 HistoryMode history) const;

  virtual void on_deactivated(PolicyEngine& engine, const Rule& rule,
                              UserProfile& user, double now) const;

 protected:
  // The seed activation flow (threshold + selection), shared by paper,
  // racing (pre-winner) and hysteresis.
  std::optional<int> count_violation(PolicyEngine& engine, const Rule& rule,
                                     UserProfile& user) const;

  StrategyConfig cfg_;
};

}  // namespace oak::core
