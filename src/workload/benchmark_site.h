// The §5.2 benchmark-detection scenario (Figs. 10 & 11).
//
// "A simple website which consists of 6 sets of simple objects. Each set
// consists of files sized 30, 50, 100, and 500KB. The first set ... hosted on
// the same machine as the page index. Each of the remaining 5 sets are
// hosted on different external servers ... An additional 5 sets of the same
// objects are created on another randomly selected set of 5 servers. A rule
// is created for each of the original sets that specifies one of the second
// set as an alternative using only Type 2 rules."
//
// Matching the paper's accidental finding, two of the default servers are
// markedly worse than the rest — with a strong diurnal component, so they
// collapse during (their local) daytime and recover at night (Fig. 11).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "page/site.h"

namespace oak::workload {

class BenchmarkSiteScenario {
 public:
  struct Options {
    std::uint64_t seed = 11;
    int degraded_servers = 2;        // how many default servers are sick
    double degraded_diurnal = 40.0;  // their daytime load amplitude
    double degraded_chronic = 2.0;   // their always-on handicap
  };

  explicit BenchmarkSiteScenario(Options opt);
  BenchmarkSiteScenario() : BenchmarkSiteScenario(Options{}) {}

  page::WebUniverse& universe() { return *universe_; }
  core::OakServer& oak() { return *oak_; }

  const std::string& oak_site_url() const { return oak_site_url_; }
  const std::string& default_site_url() const { return default_site_url_; }

  // Default external hosts, one per object set (5 of them).
  const std::vector<std::string>& set_hosts() const { return set_hosts_; }
  const std::vector<std::string>& alt_hosts() const { return alt_hosts_; }
  // Which set indices are hosted on degraded servers.
  const std::vector<int>& degraded_sets() const { return degraded_sets_; }
  // The origin-hosted set uses this host (the site host itself).
  const std::string& origin_host() const { return oak_host_; }

  static constexpr std::uint64_t kSetSizes[4] = {30'000, 50'000, 100'000,
                                                 500'000};

 private:
  std::unique_ptr<page::WebUniverse> universe_;
  std::unique_ptr<core::OakServer> oak_;
  std::string oak_host_;
  std::string oak_site_url_;
  std::string default_site_url_;
  std::vector<std::string> set_hosts_;
  std::vector<std::string> alt_hosts_;
  std::vector<int> degraded_sets_;
};

}  // namespace oak::workload
