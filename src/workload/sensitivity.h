// The Fig. 9 sensitivity scenario.
//
// "We consider a scenario in which a page is loaded from a client who loads
// objects of varying sizes from 5 external servers. ... With each subsequent
// load, a single external host adds a small delay before responding. For
// each iteration, we perform this process once with Oak configured with an
// alternate for that server, and once with the default server."
//
// Two twin sites share the same external objects: one fronted by an
// Oak-enabled server, one serving the default page verbatim. The target
// external server exposes set_injected_delay().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "page/site.h"

namespace oak::workload {

class SensitivityScenario {
 public:
  explicit SensitivityScenario(std::uint64_t seed = 7);

  page::WebUniverse& universe() { return *universe_; }
  core::OakServer& oak() { return *oak_; }

  const std::string& oak_site_url() const { return oak_site_url_; }
  const std::string& default_site_url() const { return default_site_url_; }

  // The external server whose responses are delayed.
  net::ServerId target_server() const { return target_; }
  void set_injected_delay(double seconds);

  // All five default external servers (target is index 0).
  const std::vector<net::ServerId>& external_servers() const {
    return externals_;
  }

 private:
  std::unique_ptr<page::WebUniverse> universe_;
  std::unique_ptr<core::OakServer> oak_;
  std::string oak_site_url_;
  std::string default_site_url_;
  std::vector<net::ServerId> externals_;
  net::ServerId target_ = net::kInvalidServer;
};

}  // namespace oak::workload
