#include "workload/existing_sites.h"

#include <set>

#include "util/strings.h"
#include "util/url.h"

namespace oak::workload {

std::string mirror_host(net::Region region, const std::string& domain) {
  return util::to_lower(net::region_code(region)) + ".mirror." + domain;
}

std::size_t closest_mirror_index(const std::string& client_ip) {
  auto ip = net::IpAddr::parse(client_ip);
  if (!ip) return 0;
  const std::uint32_t octet = ip->value() >> 24;
  switch (octet) {
    case 24: return 0;   // NA block
    case 81: return 1;   // EU block
    case 119: return 2;  // AS block
    case 133: return 2;  // OC block -> AS mirror
    default: return 0;   // SA and anything else -> NA mirror
  }
}

ExistingSitesScenario::ExistingSitesScenario(Options opt) : opt_(opt) {
  page::CorpusConfig ccfg;
  ccfg.seed = opt.seed;
  ccfg.num_sites = opt.corpus_sites;
  corpus_ = std::make_unique<page::Corpus>(ccfg);
  page::WebUniverse& uni = corpus_->universe();
  net::Network& net = uni.network();

  clients_ = make_vantage_points(net, opt.vantage_points);

  // Three healthy replica servers, one per mirror region.
  for (std::size_t i = 0; i < kMirrorRegions.size(); ++i) {
    net::ServerConfig cfg;
    cfg.name = "mirror-" + net::region_code(kMirrorRegions[i]);
    cfg.region = kMirrorRegions[i];
    cfg.base_processing_s = 0.012;
    cfg.bandwidth_bps = 250e6;
    cfg.diurnal_amplitude = 0.2;
    mirror_servers_[i] = net.add_server(cfg);
  }

  core::OakConfig ocfg;
  // §4.2.4 operator policy: require five violations before switching, so a
  // single noisy load does not flip a provider.
  ocfg.policy.default_min_violations = 5;
  ocfg.policy.alternative_selector =
      [](const std::string& client_ip, std::size_t n) {
        const std::size_t idx = closest_mirror_index(client_ip);
        return idx < n ? idx : 0;
      };

  // The first ten corpus sites are the paper's Table 2 selection.
  const std::size_t n_sut = std::min<std::size_t>(10, corpus_->sites().size());
  for (std::size_t i = 0; i < n_sut; ++i) {
    const page::Site& site = corpus_->sites()[i];
    SiteUnderTest sut;
    sut.site = &site;
    sut.h2 = site.external_host_count() > 15;
    sut.origin_region = net.server(site.origin_server).region();

    // Distinct external domains, in first-use order.
    std::set<std::string> seen;
    for (const auto& hu : site.external_hosts) {
      if (seen.insert(hu.host).second) sut.domains.push_back(hu.host);
    }

    // Replicate every external object of this site to all three mirrors and
    // bind the mirror hostnames.
    for (const auto& hu : site.external_hosts) {
      for (std::size_t r = 0; r < kMirrorRegions.size(); ++r) {
        const std::string mhost = mirror_host(kMirrorRegions[r], hu.host);
        if (!uni.dns().has(mhost)) {
          uni.dns().bind(mhost, net.server(mirror_servers_[r]).addr());
        }
        for (const auto& obj_url : hu.object_urls) {
          if (auto mirrored = util::replace_host(obj_url, mhost)) {
            uni.store().replicate(obj_url, *mirrored);
          }
        }
      }
    }

    auto oak = std::make_unique<core::OakServer>(uni, site.host, ocfg);
    for (const auto& d : sut.domains) {
      std::vector<std::string> alts;
      alts.reserve(kMirrorRegions.size());
      for (net::Region r : kMirrorRegions) alts.push_back(mirror_host(r, d));
      oak->add_rule(core::make_domain_rule("switch-" + d, d, std::move(alts)));
    }
    oak->install();
    sut.oak = oak.get();
    oak_servers_.push_back(std::move(oak));
    sites_.push_back(std::move(sut));
  }
}

}  // namespace oak::workload
