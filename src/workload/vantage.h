// Vantage-point client sets.
//
// Paper §5 (Implementation): "Our clients consist of 25 Planet Lab nodes,
// half of which are in North America, and the remainder evenly spread
// between Europe and Asia (including Oceania)."
#pragma once

#include <vector>

#include "net/network.h"

namespace oak::workload {

struct VantagePoint {
  net::ClientId client;
  net::Region region;
};

// Create `count` clients on `net` with the paper's regional mix:
// ~half NA, remainder split between EU and AS/OC.
std::vector<VantagePoint> make_vantage_points(net::Network& net,
                                              std::size_t count = 25);

// One client per region from {NA, EU, AS} (the Fig. 9 trio).
std::vector<VantagePoint> make_region_trio(net::Network& net);

}  // namespace oak::workload
