#include "workload/harness.h"

#include <cstdio>

#include "util/strings.h"

namespace oak::workload {

void print_banner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", experiment_id.c_str(), title.c_str());
}

void print_cdf(const std::string& series, const util::Cdf& cdf,
               std::size_t max_points) {
  std::printf("%s", cdf.to_table(series, max_points).c_str());
  std::printf("# %s: median=%.4g p10=%.4g p90=%.4g n=%zu\n", series.c_str(),
              cdf.quantile(0.5), cdf.quantile(0.1), cdf.quantile(0.9),
              cdf.size());
}

void print_series(const std::string& series,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label) {
  std::printf("# series: %s\n# %s\t%s\n", series.c_str(), x_label.c_str(),
              y_label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("%.6g\t%.6g\n", x, y);
  }
}

void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::printf("# table: %s\n", title.c_str());
  std::vector<std::size_t> width(header.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  widen(header);
  for (const auto& r : rows) widen(r);
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(i < width.size() ? width[i] : 0),
                  row[i].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  for (const auto& r : rows) print_row(r);
}

void print_stat(const std::string& name, double value) {
  std::printf("# stat: %s = %.6g\n", name.c_str(), value);
}

}  // namespace oak::workload
