#include "workload/sensitivity.h"

#include "util/strings.h"

namespace oak::workload {

namespace {
// All external servers and alternates are North American PlanetLab-style
// nodes: stable and similar, so Oak's baseline MAD stays tight.
net::ServerConfig planetlab_node(const std::string& name) {
  net::ServerConfig cfg;
  cfg.name = name;
  cfg.region = net::Region::kNorthAmerica;
  cfg.base_processing_s = 0.020;
  cfg.bandwidth_bps = 100e6;
  cfg.diurnal_amplitude = 0.2;
  return cfg;
}
}  // namespace

SensitivityScenario::SensitivityScenario(std::uint64_t seed) {
  net::NetworkConfig ncfg;
  ncfg.seed = seed;
  universe_ = std::make_unique<page::WebUniverse>(ncfg);
  net::Network& net = universe_->network();

  net::ServerConfig origin_cfg = planetlab_node("origin");
  origin_cfg.bandwidth_bps = 400e6;  // campus web server, full connection
  origin_cfg.base_processing_s = 0.008;
  const net::ServerId origin = net.add_server(origin_cfg);

  const std::string oak_host = "sens.example.com";
  const std::string default_host = "sens-default.example.com";
  universe_->dns().bind(oak_host, net.server(origin).addr());
  universe_->dns().bind(default_host, net.server(origin).addr());

  // 5 default external servers + 1 alternate for the delayed target.
  std::vector<core::Rule> rules;
  std::vector<std::string> ext_hosts;
  for (int i = 0; i < 5; ++i) {
    const net::ServerId sid =
        net.add_server(planetlab_node(util::format("ext%d", i)));
    externals_.push_back(sid);
    const std::string host = util::format("ext%d.sensnet.net", i);
    ext_hosts.push_back(host);
    universe_->dns().bind(host, net.server(sid).addr());
  }
  target_ = externals_[0];

  const net::ServerId alt = net.add_server(planetlab_node("alt0"));
  const std::string alt_host = "alt0.sensnet.net";
  universe_->dns().bind(alt_host, net.server(alt).addr());

  // Both sites reference identical external objects of varying sizes.
  static constexpr std::uint64_t kSizes[] = {10'000, 25'000, 45'000, 120'000,
                                             200'000};
  auto build = [&](const std::string& host) {
    page::SiteBuilder builder(*universe_, host, origin);
    for (std::size_t i = 0; i < ext_hosts.size(); ++i) {
      for (std::size_t s = 0; s < 4; ++s) {
        builder.add_direct(ext_hosts[i],
                           util::format("/obj%zu_%zu.bin", i, s),
                           html::RefKind::kImage,
                           kSizes[(i + s) % std::size(kSizes)],
                           page::Category::kCdn);
      }
    }
    return builder.finish();
  };
  page::Site oak_site = build(oak_host);
  build(default_host);
  oak_site_url_ = oak_site.index_url();
  default_site_url_ = "http://" + default_host + "/index.html";

  // Replicate the target's objects to the alternate host.
  for (std::size_t s = 0; s < 4; ++s) {
    const std::string path = util::format("/obj%d_%zu.bin", 0, s);
    universe_->store().replicate("http://" + ext_hosts[0] + path,
                                 "http://" + alt_host + path);
  }

  core::OakConfig ocfg;
  oak_ = std::make_unique<core::OakServer>(*universe_, oak_host, ocfg);
  oak_->add_rule(core::make_domain_rule("target-switch", ext_hosts[0],
                                        {alt_host}));
  oak_->install();
}

void SensitivityScenario::set_injected_delay(double seconds) {
  universe_->network().server(target_).set_injected_delay(seconds);
}

}  // namespace oak::workload
