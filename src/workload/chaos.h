// Chaos workload: the fault-injection counterpart of the §5.2 benchmark
// site.
//
// A page referencing N third-party providers, each mirrored on a healthy
// alternate host and paired with a type-2 domain rule. A configurable
// fraction of the providers is taken down for a scheduled window (or the
// origin itself is flapped, for the report-loss experiment). Two site
// variants share the object sets: the Oak-managed one (reports flow to an
// OakServer that can activate the mirror rules) and a vanilla one (no
// handler, no reports, no mitigation). Everything — topology, schedule,
// fault windows — is a pure function of the seed, so two runs with the
// same options are byte-identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "net/fault.h"
#include "page/site.h"

namespace oak::workload {

class ChaosScenario {
 public:
  struct Options {
    std::uint64_t seed = 23;
    int providers = 10;            // third-party providers on the page
    int objects_per_provider = 3;  // small + medium + large mix
    // Fraction of providers taken down (rounded, min 1 when > 0).
    double outage_fraction = 0.1;
    net::FaultType fault = net::FaultType::kConnectRefused;
    double onset_s = 1800.0;
    double duration_s = 7200.0;
    // Flapping inside the outage window (0 = solid outage).
    double flap_period_s = 0.0;
    double flap_duty = 1.0;
    // Fault the origin server instead of providers — the report-upload
    // loss experiment (reports die when the origin is unreachable).
    bool fault_origin = false;
    // Policy handed to the embedded OakServer (strategy table, holdback,
    // record_context, ...). Default-constructed == seed behavior.
    core::Policy policy;
    // Give every provider a second, chronically slow mirror
    // (tpN.mirror2.net) and list it FIRST in the rule's alternatives, so
    // linear progression lands on the slow mirror while a racing policy can
    // discover the fast one. Off by default: topology, rules and schedule
    // stay byte-identical to the seed.
    bool racing_mirrors = false;
    double slow_mirror_degradation = 8.0;
  };

  explicit ChaosScenario(Options opt);
  ChaosScenario() : ChaosScenario(Options{}) {}

  page::WebUniverse& universe() { return *universe_; }
  core::OakServer& oak() { return *oak_; }
  const Options& options() const { return opt_; }

  const std::string& oak_site_url() const { return oak_site_url_; }
  const std::string& default_site_url() const { return default_site_url_; }

  const std::vector<std::string>& provider_hosts() const {
    return provider_hosts_;
  }
  const std::vector<std::string>& mirror_hosts() const {
    return mirror_hosts_;
  }
  // Non-empty only when racing_mirrors is on: the chronically slow
  // tpN.mirror2.net hosts (alternative index 0 of each rule).
  const std::vector<std::string>& slow_mirror_hosts() const {
    return slow_mirror_hosts_;
  }
  const std::vector<net::ServerId>& provider_servers() const {
    return provider_servers_;
  }
  // Indices (into provider_hosts()) of the providers under outage.
  const std::vector<int>& faulted_providers() const {
    return faulted_providers_;
  }
  net::ServerId origin_server() const { return origin_server_; }

  static constexpr std::uint64_t kObjectSizes[3] = {20'000, 45'000, 120'000};

 private:
  Options opt_;
  std::unique_ptr<page::WebUniverse> universe_;
  std::unique_ptr<core::OakServer> oak_;
  std::string oak_host_;
  std::string oak_site_url_;
  std::string default_site_url_;
  net::ServerId origin_server_ = net::kInvalidServer;
  std::vector<std::string> provider_hosts_;
  std::vector<std::string> mirror_hosts_;
  std::vector<std::string> slow_mirror_hosts_;
  std::vector<net::ServerId> provider_servers_;
  std::vector<int> faulted_providers_;
};

}  // namespace oak::workload
