#include "workload/existing_experiment.h"

#include "browser/browser.h"
#include "util/strings.h"

namespace oak::workload {

std::string canonical_domain(const std::string& host, bool* was_mirror) {
  for (net::Region r : kMirrorRegions) {
    const std::string prefix = util::to_lower(net::region_code(r)) + ".mirror.";
    if (util::starts_with(host, prefix)) {
      if (was_mirror) *was_mirror = true;
      return host.substr(prefix.size());
    }
  }
  if (was_mirror) *was_mirror = false;
  return host;
}

ExistingExperimentResult run_existing_experiment(
    const ExistingExperimentOptions& opt) {
  ExistingSitesScenario::Options sopt;
  sopt.seed = opt.seed;
  sopt.vantage_points = opt.vantage_points;
  ExistingSitesScenario scenario(sopt);

  ExistingExperimentResult result;
  result.users_per_site = scenario.clients().size();

  for (std::size_t si = 0; si < scenario.sites().size(); ++si) {
    auto& sut = scenario.sites()[si];
    result.table2_rows.push_back(
        {sut.site->host, sut.h2 ? "H2" : "H1",
         std::to_string(sut.site->external_host_count())});

    // rule id -> domain, for reading profile activity.
    std::map<int, std::string> rule_domain;
    for (const auto& r : sut.oak->rules()) rule_domain[r.id] = r.default_text;

    // Outcome slot per (client, domain).
    std::map<std::pair<std::size_t, std::string>, std::size_t> slot;
    auto outcome_for = [&](std::size_t ci,
                           const std::string& domain) -> RuleOutcome& {
      auto key = std::make_pair(ci, domain);
      auto it = slot.find(key);
      if (it == slot.end()) {
        RuleOutcome o;
        o.site_index = si;
        o.client_index = ci;
        o.domain = domain;
        o.h2 = sut.h2;
        o.close = scenario.is_close(scenario.clients()[ci], sut);
        result.outcomes.push_back(std::move(o));
        it = slot.emplace(key, result.outcomes.size() - 1).first;
      }
      return result.outcomes[it->second];
    };
    const std::set<std::string> rule_domains(sut.domains.begin(),
                                             sut.domains.end());

    for (Condition cond :
         {Condition::kDefault, Condition::kForced, Condition::kOak}) {
      // Configure the Oak server for this condition.
      core::OakConfig& cfg = sut.oak->config();
      switch (cond) {
        case Condition::kDefault:
          cfg.enabled = false;
          cfg.force_all_rules = false;
          break;
        case Condition::kForced:
          // Reports ignored (no activations logged); pages rewritten with
          // every rule, using each client's closest mirror.
          cfg.enabled = false;
          cfg.force_all_rules = true;
          break;
        case Condition::kOak:
          cfg.enabled = true;
          cfg.force_all_rules = false;
          break;
      }

      for (std::size_t ci = 0; ci < scenario.clients().size(); ++ci) {
        browser::BrowserConfig bc;
        bc.use_cache = false;
        bc.send_report = true;
        browser::Browser browser(scenario.universe(),
                                 scenario.clients()[ci].client, bc);
        for (int it = 0; it < opt.loads_per_condition; ++it) {
          // Each site runs on its own day (weather is drawn per day), and
          // each client starts its sequence an hour after the previous one
          // — synchronized vantage points would turn every transient
          // provider event into an apparent site-wide problem.
          const double t = opt.start_time + double(si) * 86400.0 +
                           double(ci) * 3600.0 + it * opt.interval_s;
          auto res = browser.load(sut.site->index_url(), t);
          for (const auto& e : res.report.entries) {
            bool was_mirror = false;
            const std::string domain = canonical_domain(e.host, &was_mirror);
            if (!rule_domains.count(domain)) continue;
            auto parsed = util::parse_url(e.url);
            const std::string path = parsed ? parsed->path : e.url;
            RuleOutcome& outcome = outcome_for(ci, domain);
            // In the Oak condition, only the loads where the object was
            // actually served from a mirror represent "the choice Oak
            // made"; pre-activation loads are the default and would blur
            // the Fig. 13 ratio.
            if (cond != Condition::kOak || was_mirror) {
              auto& bucket = outcome.sums[static_cast<int>(cond)][path];
              bucket.first += e.time_s;
              bucket.second += 1;
            }
            if (cond == Condition::kOak && was_mirror) {
              outcome.moved_paths.insert(path);
            }
          }
          if (cond == Condition::kOak) {
            const core::UserProfile* profile =
                sut.oak->profile(res.report.user_id);
            std::set<std::string> active_domains;
            if (profile) {
              for (const auto& [rid, ar] : profile->active) {
                auto it2 = rule_domain.find(rid);
                if (it2 != rule_domain.end()) {
                  active_domains.insert(it2->second);
                }
              }
            }
            for (const auto& d : sut.domains) {
              RuleOutcome& o = outcome_for(ci, d);
              const bool active = active_domains.count(d) > 0;
              o.active_per_load.push_back(active);
              if (active) o.activated_ever = true;
            }
          }
        }
      }
    }

    // Fig. 14 bookkeeping from the decision log (Oak condition only logged
    // activations; the other conditions ran with enabled=false).
    auto activated = sut.oak->decision_log().users_activating();
    for (const auto& [rid, domain] : rule_domain) {
      auto it = activated.find(rid);
      result.activations[sut.site->host][domain] =
          it == activated.end() ? std::set<std::string>{} : it->second;
    }
  }
  return result;
}

}  // namespace oak::workload
