// Driver for the §5.3 evaluation on replicated existing sites.
//
// Loads each site-under-test from each vantage point 15 times under three
// conditions — the default page (Oak off), Oak with all rules forced on,
// and Oak with normal rule behaviour — at identical simulated times, and
// aggregates per-(site, client, domain-rule) object timings plus per-load
// rule activity. Figures 12, 13 and 14 and Tables 2 and 3 are all computed
// from this record.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "workload/existing_sites.h"

namespace oak::workload {

enum class Condition { kDefault = 0, kForced = 1, kOak = 2 };

// Accumulated timing for one (site, client, rule-domain).
struct RuleOutcome {
  std::size_t site_index = 0;
  std::size_t client_index = 0;
  std::string domain;
  bool h2 = false;
  bool close = false;
  bool activated_ever = false;           // in the Oak condition
  std::vector<bool> active_per_load;     // Oak condition, per iteration
  // Per object path: (sum of times, count) under each condition.
  std::map<std::string, std::pair<double, int>> sums[3];
  // Paths that Oak actually served from a mirror at least once in the Oak
  // condition — the "Oak protected objects" of Fig. 13. Rules whose rewrite
  // is a textual no-op (dynamically-loaded objects) move nothing.
  std::set<std::string> moved_paths;
};

struct ExistingExperimentResult {
  std::vector<RuleOutcome> outcomes;
  // Fig. 14: per site host, per rule domain, the users that activated it.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      activations;
  std::size_t users_per_site = 0;
  // Table 2 rows: site, group (H1/H2), external host count.
  std::vector<std::vector<std::string>> table2_rows;
};

struct ExistingExperimentOptions {
  std::uint64_t seed = 42;
  int loads_per_condition = 15;
  double interval_s = 1800.0;
  double start_time = 6 * 3600.0;
  std::size_t vantage_points = 25;
};

ExistingExperimentResult run_existing_experiment(
    const ExistingExperimentOptions& opt);

// Strip a mirror prefix ("na.mirror.<domain>") if present.
std::string canonical_domain(const std::string& host, bool* was_mirror);

}  // namespace oak::workload
