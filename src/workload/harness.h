// Output helpers for the experiment harness: the bench binaries print the
// same rows/series the paper's figures plot, in a uniform format.
#pragma once

#include <string>
#include <vector>

#include "util/cdf.h"

namespace oak::workload {

// Figure/table header banner.
void print_banner(const std::string& experiment_id, const std::string& title);

// A CDF series (one line of a figure).
void print_cdf(const std::string& series, const util::Cdf& cdf,
               std::size_t max_points = 40);

// A labelled x/y series (Fig. 9 / Fig. 11 style).
void print_series(const std::string& series,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label);

// Simple aligned two/three-column table.
void print_table(const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

// One-line summary statistic ("median external fraction: 0.74").
void print_stat(const std::string& name, double value);

}  // namespace oak::workload
