// The §5.3 "performance on existing sites" scenario (Figs. 12–14, Tables
// 2 & 3).
//
// Replicated versions of real sites run behind Oak; external objects stay on
// their (simulated) production third parties. Rules: "a type 2 replacement
// rule for every observed [external] domain". Alternatives: "we replicate all
// external objects to 3 web servers: one in each of North America, Europe,
// and Asia. Each client is then directed to its closest alternative when a
// rule is activated" — expressed here through the client-aware
// alternative-selector policy.
//
// Sites come from the corpus; the first ten carry the paper's Table 2
// hostnames with H1 (5–15 external hosts) / H2 (>15) structure.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/oak_server.h"
#include "page/corpus.h"
#include "workload/vantage.h"

namespace oak::workload {

// Region order of every rule's alternatives list: [NA, EU, AS].
inline constexpr std::array<net::Region, 3> kMirrorRegions = {
    net::Region::kNorthAmerica, net::Region::kEurope, net::Region::kAsia};

std::string mirror_host(net::Region region, const std::string& domain);

// Closest-mirror index for a client IP (derived from the per-region client
// address blocks of oak::net::Network).
std::size_t closest_mirror_index(const std::string& client_ip);

class ExistingSitesScenario {
 public:
  struct Options {
    std::uint64_t seed = 42;
    // Corpus size; only needs to cover the ten paper sites plus context.
    std::size_t corpus_sites = 20;
    std::size_t vantage_points = 25;
  };

  struct SiteUnderTest {
    const page::Site* site = nullptr;
    core::OakServer* oak = nullptr;
    std::vector<std::string> domains;  // external domains with rules
    bool h2 = false;                   // >15 external hosts
    net::Region origin_region = net::Region::kNorthAmerica;
  };

  explicit ExistingSitesScenario(Options opt);
  ExistingSitesScenario() : ExistingSitesScenario(Options{}) {}

  page::Corpus& corpus() { return *corpus_; }
  page::WebUniverse& universe() { return corpus_->universe(); }
  std::vector<SiteUnderTest>& sites() { return sites_; }
  const std::vector<VantagePoint>& clients() const { return clients_; }

  bool is_close(const VantagePoint& vp, const SiteUnderTest& s) const {
    return vp.region == s.origin_region;
  }

 private:
  Options opt_;
  std::unique_ptr<page::Corpus> corpus_;
  std::vector<std::unique_ptr<core::OakServer>> oak_servers_;
  std::vector<SiteUnderTest> sites_;
  std::vector<VantagePoint> clients_;
  std::array<net::ServerId, 3> mirror_servers_{};
};

}  // namespace oak::workload
