// The §2 measurement study: load every corpus site from every vantage point
// and run Oak's violator detection on each resulting report. Shared by the
// Fig. 2 / Table 1 / Fig. 3 / Fig. 8 / Fig. 15 benches.
#pragma once

#include <cstdint>
#include <vector>

#include "browser/report.h"
#include "core/violator.h"
#include "page/corpus.h"
#include "workload/vantage.h"

namespace oak::workload {

struct SurveyLoad {
  std::size_t site_index = 0;
  std::size_t vp_index = 0;
  core::DetectionResult detection;
  browser::PerfReport report;
  std::size_t report_bytes = 0;
};

struct SurveyOptions {
  double start_time = 0.0;
  // Loads are staggered by this much so the survey spans realistic wall
  // clock (congestion weather changes underneath it). Each (site, vp) pair
  // keeps the same offset across surveys, so day-over-day comparisons
  // (Fig. 3) are apples to apples.
  double stagger_s = 0.5;
  core::DetectorConfig detector;
};

std::vector<SurveyLoad> run_outlier_survey(page::Corpus& corpus,
                                           const std::vector<VantagePoint>& vps,
                                           const SurveyOptions& opt);

}  // namespace oak::workload
