#include "workload/survey.h"

#include "browser/browser.h"

namespace oak::workload {

std::vector<SurveyLoad> run_outlier_survey(page::Corpus& corpus,
                                           const std::vector<VantagePoint>& vps,
                                           const SurveyOptions& opt) {
  std::vector<SurveyLoad> out;
  out.reserve(corpus.sites().size() * vps.size());
  browser::BrowserConfig bcfg;
  bcfg.use_cache = false;   // the survey measures the network, not the cache
  bcfg.send_report = false; // sites are not Oak-enabled during the survey
  std::size_t pair = 0;
  for (std::size_t v = 0; v < vps.size(); ++v) {
    browser::Browser browser(corpus.universe(), vps[v].client, bcfg);
    for (std::size_t s = 0; s < corpus.sites().size(); ++s, ++pair) {
      const double t = opt.start_time + double(pair) * opt.stagger_s;
      browser::LoadResult res =
          browser.load(corpus.sites()[s].index_url(), t);
      SurveyLoad load;
      load.site_index = s;
      load.vp_index = v;
      load.report_bytes = res.report_bytes;
      load.detection = core::detect_violators(res.report, opt.detector);
      load.report = std::move(res.report);
      out.push_back(std::move(load));
    }
  }
  return out;
}

}  // namespace oak::workload
