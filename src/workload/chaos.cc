#include "workload/chaos.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace oak::workload {

ChaosScenario::ChaosScenario(Options opt) : opt_(opt) {
  net::NetworkConfig ncfg;
  ncfg.seed = opt.seed;
  ncfg.horizon_s = 7 * 86400.0;
  universe_ = std::make_unique<page::WebUniverse>(ncfg);
  net::Network& net = universe_->network();
  util::Rng rng = util::Rng::forked(opt.seed, 0xc4a05);

  auto node = [&](const std::string& name) {
    net::ServerConfig cfg;
    cfg.name = name;
    cfg.region = net::Region::kNorthAmerica;
    cfg.base_processing_s = rng.uniform(0.012, 0.025);
    cfg.bandwidth_bps = rng.uniform(90e6, 150e6);
    cfg.diurnal_amplitude = rng.uniform(0.1, 0.3);
    return cfg;
  };

  net::ServerConfig origin_cfg = node("chaos-origin");
  origin_cfg.bandwidth_bps = 400e6;
  origin_cfg.base_processing_s = 0.008;
  origin_server_ = net.add_server(origin_cfg);

  oak_host_ = "chaos.example.com";
  const std::string default_host = "chaos-default.example.com";
  universe_->dns().bind(oak_host_, net.server(origin_server_).addr());
  universe_->dns().bind(default_host, net.server(origin_server_).addr());

  for (int i = 0; i < opt.providers; ++i) {
    const net::ServerId sid = net.add_server(node(util::format("tp%d", i)));
    const std::string host = util::format("tp%d.provider.net", i);
    provider_servers_.push_back(sid);
    provider_hosts_.push_back(host);
    universe_->dns().bind(host, net.server(sid).addr());

    const net::ServerId mid =
        net.add_server(node(util::format("mirror%d", i)));
    const std::string mirror = util::format("tp%d.mirror.net", i);
    mirror_hosts_.push_back(mirror);
    universe_->dns().bind(mirror, net.server(mid).addr());

    if (opt.racing_mirrors) {
      net::ServerConfig slow = node(util::format("mirror2-%d", i));
      slow.chronic_degradation = opt.slow_mirror_degradation;
      const net::ServerId sid2 = net.add_server(slow);
      const std::string mirror2 = util::format("tp%d.mirror2.net", i);
      slow_mirror_hosts_.push_back(mirror2);
      universe_->dns().bind(mirror2, net.server(sid2).addr());
    }
  }

  // Both site variants reference the same provider object sets.
  auto build = [&](const std::string& site_host) {
    page::SiteBuilder builder(*universe_, site_host, origin_server_);
    builder.add_origin_object("/app.css", html::RefKind::kStylesheet, 15'000);
    for (int i = 0; i < opt.providers; ++i) {
      for (int s = 0; s < opt.objects_per_provider; ++s) {
        builder.add_direct(provider_hosts_[static_cast<std::size_t>(i)],
                           util::format("/obj%d.bin", s),
                           html::RefKind::kImage, kObjectSizes[s % 3],
                           page::Category::kCdn);
      }
    }
    return builder.finish();
  };
  page::Site oak_site = build(oak_host_);
  build(default_host);
  oak_site_url_ = oak_site.index_url();
  default_site_url_ = "http://" + default_host + "/index.html";

  // Mirror every provider object and pair each provider with a type-2
  // domain rule pointing at its mirror.
  core::OakConfig ocfg;
  ocfg.policy = opt.policy;
  oak_ = std::make_unique<core::OakServer>(*universe_, oak_host_, ocfg);
  for (int i = 0; i < opt.providers; ++i) {
    for (int s = 0; s < opt.objects_per_provider; ++s) {
      const std::string path = util::format("/obj%d.bin", s);
      universe_->store().replicate(
          "http://" + provider_hosts_[static_cast<std::size_t>(i)] + path,
          "http://" + mirror_hosts_[static_cast<std::size_t>(i)] + path);
      if (opt.racing_mirrors) {
        universe_->store().replicate(
            "http://" + provider_hosts_[static_cast<std::size_t>(i)] + path,
            "http://" + slow_mirror_hosts_[static_cast<std::size_t>(i)] +
                path);
      }
    }
    // With racing mirrors the chronically slow host is alternative 0, so a
    // linear policy settles on it while racing can find the fast mirror.
    std::vector<std::string> alternatives;
    if (opt.racing_mirrors) {
      alternatives.push_back(slow_mirror_hosts_[static_cast<std::size_t>(i)]);
    }
    alternatives.push_back(mirror_hosts_[static_cast<std::size_t>(i)]);
    oak_->add_rule(core::make_domain_rule(
        util::format("tp%d", i), provider_hosts_[static_cast<std::size_t>(i)],
        alternatives));
  }
  oak_->install();

  // Fault schedule: a random (seeded) subset of providers goes down.
  const int down =
      opt.outage_fraction <= 0.0
          ? 0
          : std::max(1, static_cast<int>(std::lround(opt.outage_fraction *
                                                     opt.providers)));
  std::vector<int> order;
  for (int i = 0; i < opt.providers; ++i) order.push_back(i);
  rng.shuffle(order);
  for (int d = 0; d < down && d < opt.providers; ++d) {
    const int idx = order[static_cast<std::size_t>(d)];
    faulted_providers_.push_back(idx);
    net.faults().add_window(net::FaultWindow{
        provider_servers_[static_cast<std::size_t>(idx)], opt.fault,
        opt.onset_s, opt.onset_s + opt.duration_s,
        /*client_fraction=*/1.0, opt.flap_period_s, opt.flap_duty});
  }
  std::sort(faulted_providers_.begin(), faulted_providers_.end());
  if (opt.fault_origin) {
    net.faults().add_window(net::FaultWindow{
        origin_server_, opt.fault, opt.onset_s, opt.onset_s + opt.duration_s,
        /*client_fraction=*/1.0, opt.flap_period_s, opt.flap_duty});
  }
}

}  // namespace oak::workload
