#include "workload/vantage.h"

#include "util/strings.h"

namespace oak::workload {

std::vector<VantagePoint> make_vantage_points(net::Network& net,
                                              std::size_t count) {
  std::vector<VantagePoint> out;
  out.reserve(count);
  const std::size_t na = (count + 1) / 2;
  const std::size_t rest = count - na;
  const std::size_t eu = rest / 2;
  for (std::size_t i = 0; i < count; ++i) {
    net::Region region;
    if (i < na) {
      region = net::Region::kNorthAmerica;
    } else if (i < na + eu) {
      region = net::Region::kEurope;
    } else {
      // Asia "including Oceania": every fourth non-EU remainder is OC.
      region = (i - na - eu) % 4 == 3 ? net::Region::kOceania
                                      : net::Region::kAsia;
    }
    net::ClientConfig cfg;
    cfg.name = util::format("vp%02zu-%s", i, net::region_code(region).c_str());
    cfg.region = region;
    out.push_back(VantagePoint{net.add_client(cfg), region});
  }
  return out;
}

std::vector<VantagePoint> make_region_trio(net::Network& net) {
  std::vector<VantagePoint> out;
  for (net::Region r : {net::Region::kNorthAmerica, net::Region::kEurope,
                        net::Region::kAsia}) {
    net::ClientConfig cfg;
    cfg.name = "client-" + net::region_code(r);
    cfg.region = r;
    out.push_back(VantagePoint{net.add_client(cfg), r});
  }
  return out;
}

}  // namespace oak::workload
