#include "workload/benchmark_site.h"

#include "util/strings.h"

namespace oak::workload {

BenchmarkSiteScenario::BenchmarkSiteScenario(Options opt) {
  net::NetworkConfig ncfg;
  ncfg.seed = opt.seed;
  ncfg.horizon_s = 7 * 86400.0;
  universe_ = std::make_unique<page::WebUniverse>(ncfg);
  net::Network& net = universe_->network();
  util::Rng rng = util::Rng::forked(opt.seed, 0xbe9c);

  auto node = [&](const std::string& name) {
    net::ServerConfig cfg;
    cfg.name = name;
    cfg.region = net::Region::kNorthAmerica;
    cfg.base_processing_s = rng.uniform(0.015, 0.030);
    cfg.bandwidth_bps = rng.uniform(80e6, 140e6);
    cfg.diurnal_amplitude = rng.uniform(0.2, 0.6);
    return cfg;
  };

  net::ServerConfig origin_cfg = node("bench-origin");
  origin_cfg.bandwidth_bps = 400e6;
  origin_cfg.base_processing_s = 0.008;
  origin_cfg.diurnal_amplitude = 0.1;
  const net::ServerId origin = net.add_server(origin_cfg);

  oak_host_ = "bench.example.com";
  const std::string default_host = "bench-default.example.com";
  universe_->dns().bind(oak_host_, net.server(origin).addr());
  universe_->dns().bind(default_host, net.server(origin).addr());

  // 5 default set servers; the first `degraded_servers` of a random
  // permutation are the sick ones (the paper's two bad PlanetLab nodes).
  std::vector<int> order = {0, 1, 2, 3, 4};
  rng.shuffle(order);
  for (int i = 0; i < 5; ++i) {
    net::ServerConfig cfg = node(util::format("set%d", i + 1));
    bool degraded = false;
    for (int d = 0; d < opt.degraded_servers; ++d) {
      if (order[static_cast<std::size_t>(d)] == i) degraded = true;
    }
    if (degraded) {
      cfg.diurnal_amplitude = opt.degraded_diurnal;
      cfg.chronic_degradation = opt.degraded_chronic;
      degraded_sets_.push_back(i + 1);  // set index (origin is set 0)
    }
    const net::ServerId sid = net.add_server(cfg);
    const std::string host = util::format("set%d.default.net", i + 1);
    set_hosts_.push_back(host);
    universe_->dns().bind(host, net.server(sid).addr());
  }

  // 5 alternate servers, randomly configured, no special handicap.
  for (int i = 0; i < 5; ++i) {
    const net::ServerId sid = net.add_server(node(util::format("alt%d", i + 1)));
    const std::string host = util::format("set%d.alt.net", i + 1);
    alt_hosts_.push_back(host);
    universe_->dns().bind(host, net.server(sid).addr());
  }

  // Both site variants reference the 6 sets (origin set + 5 external).
  auto build = [&](const std::string& site_host) {
    page::SiteBuilder builder(*universe_, site_host, origin);
    for (std::size_t s = 0; s < 4; ++s) {
      builder.add_origin_object(util::format("/set0/f%zu.bin", s),
                                html::RefKind::kImage, kSetSizes[s]);
    }
    for (std::size_t h = 0; h < set_hosts_.size(); ++h) {
      for (std::size_t s = 0; s < 4; ++s) {
        builder.add_direct(set_hosts_[h], util::format("/set/f%zu.bin", s),
                           html::RefKind::kImage, kSetSizes[s],
                           page::Category::kCdn);
      }
    }
    return builder.finish();
  };
  page::Site oak_site = build(oak_host_);
  build(default_host);
  oak_site_url_ = oak_site.index_url();
  default_site_url_ = "http://" + default_host + "/index.html";

  // Replicate each set to its alternate host and pair them with a type-2
  // domain rule.
  core::OakConfig ocfg;
  oak_ = std::make_unique<core::OakServer>(*universe_, oak_host_, ocfg);
  for (std::size_t h = 0; h < set_hosts_.size(); ++h) {
    for (std::size_t s = 0; s < 4; ++s) {
      const std::string path = util::format("/set/f%zu.bin", s);
      universe_->store().replicate("http://" + set_hosts_[h] + path,
                                   "http://" + alt_hosts_[h] + path);
    }
    oak_->add_rule(core::make_domain_rule(util::format("set%zu", h + 1),
                                          set_hosts_[h], {alt_hosts_[h]}));
  }
  oak_->install();
}

}  // namespace oak::workload
