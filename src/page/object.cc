#include "page/object.h"

namespace oak::page {

std::string to_string(Category c) {
  switch (c) {
    case Category::kOrigin: return "Origin";
    case Category::kCdn: return "CDN";
    case Category::kAds: return "Ads";
    case Category::kAnalytics: return "Analytics";
    case Category::kSocial: return "Social Networking";
    case Category::kFonts: return "Fonts";
    case Category::kVideo: return "Video";
    case Category::kImages: return "Image Hosting";
  }
  return "?";
}

void ObjectStore::put(WebObject obj) { objects_[obj.url] = std::move(obj); }

const WebObject* ObjectStore::find(const std::string& url) const {
  auto it = objects_.find(url);
  return it == objects_.end() ? nullptr : &it->second;
}

WebObject* ObjectStore::find_mutable(const std::string& url) {
  auto it = objects_.find(url);
  return it == objects_.end() ? nullptr : &it->second;
}

bool ObjectStore::replicate(const std::string& from, const std::string& to) {
  auto it = objects_.find(from);
  if (it == objects_.end()) return false;
  WebObject copy = it->second;
  copy.url = to;
  objects_[to] = std::move(copy);
  return true;
}

std::vector<std::string> ObjectStore::all_urls() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [url, obj] : objects_) out.push_back(url);
  return out;
}

std::string make_script_body(const std::vector<std::string>& visible_urls,
                             std::size_t target_size) {
  std::string body = "(function(){var u=[";
  for (std::size_t i = 0; i < visible_urls.size(); ++i) {
    if (i) body += ',';
    body += '"';
    body += visible_urls[i];
    body += '"';
  }
  body +=
      "];for(var i=0;i<u.length;i++){var e=document.createElement(\"script\");"
      "e.src=u[i];document.body.appendChild(e);}})();";
  if (body.size() < target_size) {
    body += "\n/*";
    body.append(target_size - body.size() > 2 ? target_size - body.size() - 2
                                              : 0,
                'x');
    body += "*/";
  }
  return body;
}

}  // namespace oak::page
