// "Execution" of inline programmatic loader scripts.
//
// Real pages build resource URLs at runtime ("these scripts often do not
// contain well formed URLs, and instead construct the final URL
// programatically", paper §4.2.2). We cannot run JavaScript, so the
// generator emits loaders in a fixed idiom (html::programmatic_loader_script)
// and this evaluator recovers the (host, path) the script would load.
//
// Crucially the evaluator works on the *page text*, so when Oak's modifier
// rewrites a hostname inside an inline script, the browser's subsequent
// loads follow the rewritten host — exactly as a real browser would.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oak::page {

struct InlineLoad {
  std::string host;
  std::string path;
  std::string url() const { return "http://" + host + path; }
};

// Recognize one programmatic loader body. Returns nullopt when the script is
// not in the loader idiom (plain inline code loads nothing).
std::optional<InlineLoad> evaluate_loader(std::string_view script_body);

// All loads induced by the inline scripts of an HTML document.
std::vector<InlineLoad> evaluate_inline_scripts(std::string_view html);

}  // namespace oak::page
