#include "page/site.h"

#include "html/build.h"

namespace oak::page {

std::string to_string(RefTier t) {
  switch (t) {
    case RefTier::kDirect: return "direct";
    case RefTier::kInlineScript: return "inline-script";
    case RefTier::kViaExternalScript: return "via-external-script";
    case RefTier::kHidden: return "hidden";
  }
  return "?";
}

std::size_t Site::external_object_count() const {
  std::size_t n = 0;
  for (const auto& h : external_hosts) n += h.object_urls.size();
  return n;
}

WebUniverse::WebUniverse(net::NetworkConfig cfg) : net_(cfg) {}

void WebUniverse::set_handler(const std::string& host, Handler h) {
  handlers_[host] = std::move(h);
}

const WebUniverse::Handler* WebUniverse::handler(
    const std::string& host) const {
  auto it = handlers_.find(host);
  return it == handlers_.end() ? nullptr : &it->second;
}

double default_max_age(html::RefKind kind, Category category) {
  if (category == Category::kAds || category == Category::kAnalytics) {
    return 0.0;
  }
  switch (kind) {
    case html::RefKind::kImage:
    case html::RefKind::kStylesheet:
    case html::RefKind::kMedia: return 3600.0;
    case html::RefKind::kScript: return 600.0;
    default: return 0.0;
  }
}

SiteBuilder::SiteBuilder(WebUniverse& universe, std::string site_host,
                         net::ServerId origin_server, std::string page_path)
    : universe_(universe) {
  site_.host = std::move(site_host);
  site_.origin_server = origin_server;
  site_.index_path = std::move(page_path);
}

WebObject SiteBuilder::make_object(const std::string& host,
                                   const std::string& path,
                                   html::RefKind kind, std::uint64_t size,
                                   Category category, double max_age_s) {
  WebObject obj;
  obj.url = object_url(host, path);
  obj.kind = kind;
  obj.size = size;
  obj.category = category;
  obj.max_age_s = max_age_s;
  return obj;
}

HostUse& SiteBuilder::host_use(const std::string& host, RefTier tier,
                               Category category) {
  for (auto& hu : site_.external_hosts) {
    if (hu.host == host && hu.tier == tier) return hu;
  }
  site_.external_hosts.push_back(HostUse{host, tier, category, {}});
  return site_.external_hosts.back();
}

SiteBuilder& SiteBuilder::add_origin_object(const std::string& path,
                                            html::RefKind kind,
                                            std::uint64_t size,
                                            const std::string& host) {
  const std::string h = host.empty() ? site_.host : host;
  WebObject obj =
      make_object(h, path, kind, size, Category::kOrigin,
                  default_max_age(kind, Category::kOrigin));
  const std::string url = obj.url;
  universe_.store().put(std::move(obj));
  switch (kind) {
    case html::RefKind::kStylesheet: head_.push_back(html::stylesheet_tag(url)); break;
    case html::RefKind::kScript: body_.push_back(html::script_src_tag(url)); break;
    default: body_.push_back(html::img_tag(url)); break;
  }
  ++site_.origin_object_count;
  return *this;
}

SiteBuilder& SiteBuilder::add_direct(const std::string& host,
                                     const std::string& path,
                                     html::RefKind kind, std::uint64_t size,
                                     Category category) {
  WebObject obj = make_object(host, path, kind, size, category,
                              default_max_age(kind, category));
  const std::string url = obj.url;
  universe_.store().put(std::move(obj));
  switch (kind) {
    case html::RefKind::kStylesheet: head_.push_back(html::stylesheet_tag(url)); break;
    case html::RefKind::kScript: body_.push_back(html::script_src_tag(url)); break;
    case html::RefKind::kFrame: body_.push_back(html::iframe_tag(url)); break;
    default: body_.push_back(html::img_tag(url)); break;
  }
  host_use(host, RefTier::kDirect, category).object_urls.push_back(url);
  return *this;
}

SiteBuilder& SiteBuilder::add_inline_loader(const std::string& host,
                                            const std::string& path,
                                            std::uint64_t size,
                                            Category category) {
  WebObject obj = make_object(host, path, html::RefKind::kScript, size,
                              category, default_max_age(html::RefKind::kScript,
                                                        category));
  const std::string url = obj.url;
  universe_.store().put(std::move(obj));
  body_.push_back(html::programmatic_loader_script(host, path));
  host_use(host, RefTier::kInlineScript, category).object_urls.push_back(url);
  return *this;
}

SiteBuilder& SiteBuilder::add_script_with_induced(
    const std::string& script_host, const std::string& script_path,
    std::uint64_t script_size, Category script_category,
    const std::vector<Induced>& induced) {
  WebObject script =
      make_object(script_host, script_path, html::RefKind::kScript,
                  script_size, script_category,
                  default_max_age(html::RefKind::kScript, script_category));
  std::vector<std::string> visible;
  for (const auto& ind : induced) {
    WebObject obj = make_object(ind.host, ind.path, ind.kind, ind.size,
                                ind.category,
                                default_max_age(ind.kind, ind.category));
    const std::string url = obj.url;
    universe_.store().put(std::move(obj));
    script.induced.push_back(url);
    visible.push_back(url);
    host_use(ind.host, RefTier::kViaExternalScript, ind.category)
        .object_urls.push_back(url);
  }
  script.body = make_script_body(visible, script_size);
  script.size = script.body.size();
  const std::string script_url = script.url;
  universe_.store().put(std::move(script));
  body_.push_back(html::script_src_tag(script_url));
  host_use(script_host, RefTier::kDirect, script_category)
      .object_urls.push_back(script_url);
  return *this;
}

SiteBuilder& SiteBuilder::add_hidden(const std::string& host,
                                     const std::string& path,
                                     html::RefKind kind, std::uint64_t size,
                                     Category category) {
  WebObject obj = make_object(host, path, kind, size, category,
                              default_max_age(kind, category));
  const std::string url = obj.url;
  universe_.store().put(std::move(obj));
  hidden_induced_.push_back(url);
  host_use(host, RefTier::kHidden, category).object_urls.push_back(url);
  return *this;
}

SiteBuilder& SiteBuilder::add_markup(const std::string& html_fragment) {
  body_.push_back(html_fragment);
  return *this;
}

Site SiteBuilder::finish(double index_max_age_s) {
  html::PageSkeleton skeleton;
  skeleton.title = site_.host;
  skeleton.head_fragments = head_;
  skeleton.body_fragments = body_;

  WebObject index;
  index.url = site_.index_url();
  index.kind = html::RefKind::kOther;
  index.category = Category::kOrigin;
  index.body = html::assemble(skeleton);
  index.size = index.body.size();
  index.hidden_induced = hidden_induced_;
  index.max_age_s = index_max_age_s;
  universe_.store().put(std::move(index));
  return site_;
}

}  // namespace oak::page
