// The object universe: every fetchable thing in the simulated web.
//
// The paper's clients load real pages whose objects live on real servers.
// Here, a WebObject records what a URL returns (size, body for text
// resources) and — because we do not execute JavaScript — an explicit
// *induction list*: the URLs a script causes the browser to load when it
// runs. This is precisely the paper's "connection dependency" abstraction
// (§4.2.2, Fig. 6): Oak does not care about execution order, only that a
// block on a page caused connections to particular servers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "html/extract.h"

namespace oak::page {

// Content category, used for outlier characterization (Table 1) and for
// giving third-party classes realistic failure profiles.
enum class Category {
  kOrigin,
  kCdn,
  kAds,
  kAnalytics,
  kSocial,
  kFonts,
  kVideo,
  kImages,
};

std::string to_string(Category c);

struct WebObject {
  std::string url;
  html::RefKind kind = html::RefKind::kOther;
  std::uint64_t size = 0;
  Category category = Category::kOrigin;
  // Body text; present for HTML documents and scripts (scripts that induce
  // visible loads mention those URLs in their body — Oak's tier-3 matcher
  // reads exactly this text).
  std::string body;
  // URLs this object loads when executed/rendered by the browser.
  std::vector<std::string> induced;
  // Induced loads whose origin is masked (built by opaque dynamic code):
  // they are fetched, but never appear in any body text — the residual ~19%
  // that no matching tier can reach (paper Fig. 8 discussion).
  std::vector<std::string> hidden_induced;
  double max_age_s = 0.0;  // 0 => uncacheable
  // Provider opt-in to cross-origin timing visibility (the
  // Timing-Allow-Origin response header). Only relevant when the client
  // reports via the JavaScript Resource Timing API instead of a modified
  // browser (paper §6, Alternative Mechanisms).
  bool timing_allow_origin = false;
};

class ObjectStore {
 public:
  // Insert or replace.
  void put(WebObject obj);
  const WebObject* find(const std::string& url) const;
  WebObject* find_mutable(const std::string& url);
  bool has(const std::string& url) const { return find(url) != nullptr; }
  std::size_t size() const { return objects_.size(); }

  // Copy an existing object to a new URL (replication to an alternative
  // host, preserving body/induction). Returns false if `from` is unknown.
  bool replicate(const std::string& from, const std::string& to);

  std::vector<std::string> all_urls() const;

 private:
  std::map<std::string, WebObject> objects_;
};

// Build a script body of roughly `target_size` bytes that textually mentions
// each URL in `visible_urls` (comment filler pads the remainder).
std::string make_script_body(const std::vector<std::string>& visible_urls,
                             std::size_t target_size);

}  // namespace oak::page
