#include "page/corpus.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace oak::page {

namespace {

struct NamedProvider {
  const char* name;
  Category category;
  std::vector<const char*> domains;
};

// Recognizable third parties, including every domain the paper's Tables 1
// and 3 mention, so the reproduced tables read like the originals.
const std::vector<NamedProvider>& named_providers() {
  static const std::vector<NamedProvider> kProviders = {
      {"doubleclick", Category::kAds,
       {"stats.g.doubleclick.net", "ad.doubleclick.com",
        "pubads.g.doubleclick.net"}},
      {"adnxs", Category::kAds, {"ib.adnxs.com"}},
      {"vizury", Category::kAds, {"rtb-ap.vizury.com"}},
      {"adcash-net", Category::kAds, {"cdn.adcash.com"}},
      {"msads", Category::kAds, {"ads1.msads.net"}},
      {"yadro", Category::kAds, {"counter.yadro.ru"}},
      {"criteo", Category::kAds, {"static.criteo.net"}},
      {"taboola", Category::kAds, {"cdn.taboola.com"}},
      {"outbrain", Category::kAds, {"widgets.outbrain.com"}},
      {"rubicon", Category::kAds, {"ads.rubiconproject.com"}},
      {"yahoo-analytics", Category::kAnalytics, {"sp.analytics.yahoo.com"}},
      {"dsply", Category::kAnalytics, {"www.dsply.com"}},
      {"alexa-metrics", Category::kAnalytics,
       {"d31qbv1cthcecs.cloudfront.net"}},
      {"hotjar", Category::kAnalytics, {"insights.hotjar.com"}},
      {"google-analytics", Category::kAnalytics,
       {"www.google-analytics.com"}},
      {"chartbeat", Category::kAnalytics, {"static.chartbeat.com"}},
      {"scorecard", Category::kAnalytics, {"sb.scorecardresearch.com"}},
      {"quantserve", Category::kAnalytics, {"secure.quantserve.com"}},
      {"facebook", Category::kSocial,
       {"facebook.com", "s-static.ak.facebook.com", "connect.facebook.net"}},
      {"twitter", Category::kSocial,
       {"analytics.twitter.com", "platform.twitter.com"}},
      {"linkedin", Category::kSocial, {"platform.linkedin.com"}},
      {"pinterest", Category::kSocial, {"assets.pinterest.com"}},
      {"vk", Category::kSocial, {"vk.com"}},
      {"akamai", Category::kCdn, {"e1.a.akamaiedge.net", "a248.e.akamai.net"}},
      {"cloudfront", Category::kCdn, {"d1.cloudfront.net", "d2.cloudfront.net"}},
      {"fastly", Category::kCdn, {"global.fastly.net"}},
      {"cloudflare", Category::kCdn, {"cdnjs.cloudflare.com"}},
      {"mycdn", Category::kCdn, {"vdp.mycdn.me"}},
      {"xhcdn", Category::kCdn, {"ut06.xhcdn.com"}},
      {"flixcart", Category::kCdn, {"img1a.flixcart.com"}},
      {"qunarzz", Category::kCdn, {"img1.qunarzz.com"}},
      {"ytimg", Category::kCdn, {"i.ytimg.com"}},
      {"google-fonts", Category::kFonts,
       {"fonts.googleapis.com", "fonts.gstatic.com"}},
      {"typekit", Category::kFonts, {"use.typekit.net"}},
      {"brightcove", Category::kVideo, {"players.brightcove.net"}},
      {"jwplayer", Category::kVideo, {"content.jwplatform.com"}},
      {"vimeo", Category::kVideo, {"player.vimeo.com"}},
      {"imgur", Category::kImages, {"i.imgur.com"}},
      {"gravatar", Category::kImages, {"secure.gravatar.com"}},
      {"giphy", Category::kImages, {"media.giphy.com"}},
  };
  return kProviders;
}

// The paper's Table 2 site names: H1 (5–15 external hosts) then H2 (>15),
// with their real home regions ("a portion of our sites come from each
// North America, Europe, and Asia", §5.3).
struct PaperSite {
  const char* host;
  int external_hosts;
  net::Region region;
};
const std::vector<PaperSite>& paper_sites() {
  static const std::vector<PaperSite> kSites = {
      {"youtube.com", 9, net::Region::kNorthAmerica},
      {"msn.com", 12, net::Region::kNorthAmerica},
      {"wordpress.com", 8, net::Region::kNorthAmerica},
      {"naver.com", 11, net::Region::kAsia},
      {"adcash.com", 6, net::Region::kEurope},
      {"ok.ru", 19, net::Region::kEurope},
      {"flipkart.com", 24, net::Region::kAsia},
      {"qunar.com", 21, net::Region::kAsia},
      {"hulu.com", 17, net::Region::kNorthAmerica},
      {"xhamster.com", 26, net::Region::kEurope},
  };
  return kSites;
}

struct FailureProfile {
  double chronic_chance = 0.0;
  double chronic_lo = 3.0, chronic_hi = 8.0;
  double congestion_rate_per_day = 0.2;
  double congestion_mean_severity = 2.0;
  double blind_spot_chance = 0.08;
  double base_processing_s = 0.020;
  double bandwidth_bps = 120e6;
  double diurnal_amplitude = 0.5;
  // Probability the provider runs global PoPs (clients reach it locally).
  // The rest serve from a single home region — the paper's "resource always
  // being in a distant location from the user" class of individual problem.
  double global_pops_chance = 0.5;
};

// Calibrated jointly against Figs. 2 and 3: chronic degradation and blind
// spots produce the *persistent* outliers, congestion weather the
// *ephemeral* ones; the paper observes roughly a 50/50 split after one day.
// 2016-era Timing-Allow-Origin adoption: infrastructure providers opt in
// sometimes, ad/analytics almost never — which is exactly why the paper
// rejects the Resource Timing API as Oak's data source (§6).
double timing_opt_in_chance(Category c) {
  switch (c) {
    case Category::kFonts: return 0.9;
    case Category::kCdn: return 0.5;
    case Category::kSocial: return 0.35;
    case Category::kVideo:
    case Category::kImages: return 0.3;
    case Category::kAnalytics: return 0.2;
    case Category::kAds: return 0.1;
    case Category::kOrigin: return 0.0;
  }
  return 0.0;
}

FailureProfile profile_for(Category c) {
  switch (c) {
    case Category::kAds:
      return {.chronic_chance = 0.03, .chronic_lo = 3.0, .chronic_hi = 9.0,
              .congestion_rate_per_day = 0.55, .congestion_mean_severity = 6.0,
              .blind_spot_chance = 0.03, .base_processing_s = 0.025,
              .bandwidth_bps = 60e6, .diurnal_amplitude = 0.5,
              .global_pops_chance = 0.93};
    case Category::kAnalytics:
      return {.chronic_chance = 0.025, .chronic_lo = 2.5, .chronic_hi = 7.0,
              .congestion_rate_per_day = 0.4, .congestion_mean_severity = 5.0,
              .blind_spot_chance = 0.03, .base_processing_s = 0.022,
              .bandwidth_bps = 70e6, .diurnal_amplitude = 0.5,
              .global_pops_chance = 0.93};
    case Category::kSocial:
      return {.chronic_chance = 0.03, .chronic_lo = 2.0, .chronic_hi = 6.0,
              .congestion_rate_per_day = 0.15, .congestion_mean_severity = 4.0,
              .blind_spot_chance = 0.03, .base_processing_s = 0.020,
              .bandwidth_bps = 90e6, .diurnal_amplitude = 0.4,
              .global_pops_chance = 0.96};
    case Category::kCdn:
      return {.chronic_chance = 0.02, .chronic_lo = 2.0, .chronic_hi = 5.0,
              .congestion_rate_per_day = 0.15, .congestion_mean_severity = 3.0,
              .blind_spot_chance = 0.02, .base_processing_s = 0.012,
              .bandwidth_bps = 250e6, .diurnal_amplitude = 0.4,
              .global_pops_chance = 0.96};
    case Category::kFonts:
      return {.chronic_chance = 0.02, .chronic_lo = 2.0, .chronic_hi = 4.0,
              .congestion_rate_per_day = 0.155, .congestion_mean_severity = 3.5,
              .blind_spot_chance = 0.03, .base_processing_s = 0.015,
              .bandwidth_bps = 150e6, .diurnal_amplitude = 0.4,
              .global_pops_chance = 0.96};
    case Category::kVideo:
      return {.chronic_chance = 0.025, .chronic_lo = 2.0, .chronic_hi = 5.0,
              .congestion_rate_per_day = 0.45, .congestion_mean_severity = 4.0,
              .blind_spot_chance = 0.02, .base_processing_s = 0.020,
              .bandwidth_bps = 200e6, .diurnal_amplitude = 0.4,
              .global_pops_chance = 0.96};
    case Category::kImages:
      return {.chronic_chance = 0.025, .chronic_lo = 2.0, .chronic_hi = 5.0,
              .congestion_rate_per_day = 0.4, .congestion_mean_severity = 3.5,
              .blind_spot_chance = 0.02, .base_processing_s = 0.018,
              .bandwidth_bps = 180e6, .diurnal_amplitude = 0.5,
              .global_pops_chance = 0.96};
    case Category::kOrigin:
      return {.chronic_chance = 0.0, .congestion_rate_per_day = 0.15,
              .congestion_mean_severity = 2.0, .blind_spot_chance = 0.0,
              .base_processing_s = 0.015, .bandwidth_bps = 150e6,
              .diurnal_amplitude = 0.3,
              .global_pops_chance = 0.0};
  }
  return {};
}

net::Region pick_region(util::Rng& rng) {
  static const std::vector<double> kWeights = {0.45, 0.25, 0.20, 0.05, 0.05};
  return net::all_regions()[rng.weighted(kWeights)];
}

Category pick_filler_category(util::Rng& rng) {
  // Category mix of generated filler providers; ads/analytics dominate the
  // third-party ecosystem just as in the paper's Table 1.
  static const std::vector<double> kWeights = {
      /*kCdn*/ 0.18, /*kAds*/ 0.30, /*kAnalytics*/ 0.20, /*kSocial*/ 0.08,
      /*kFonts*/ 0.04, /*kVideo*/ 0.08, /*kImages*/ 0.12};
  static const Category kCats[] = {
      Category::kCdn,   Category::kAds,   Category::kAnalytics,
      Category::kSocial, Category::kFonts, Category::kVideo,
      Category::kImages};
  return kCats[rng.weighted(kWeights)];
}

std::string filler_domain(Category c, std::size_t index) {
  const char* prefix = "static";
  const char* tld = "com";
  switch (c) {
    case Category::kAds: prefix = "ads"; tld = "net"; break;
    case Category::kAnalytics: prefix = "metrics"; tld = "io"; break;
    case Category::kSocial: prefix = "social"; break;
    case Category::kCdn: prefix = "cdn"; tld = "net"; break;
    case Category::kFonts: prefix = "fonts"; break;
    case Category::kVideo: prefix = "media"; tld = "tv"; break;
    case Category::kImages: prefix = "img"; break;
    case Category::kOrigin: break;
  }
  return util::format("%s.provider%03zu.%s", prefix, index, tld);
}

html::RefKind pick_kind(Category c, util::Rng& rng) {
  switch (c) {
    case Category::kAds:
      return rng.chance(0.5) ? html::RefKind::kScript
                             : (rng.chance(0.5) ? html::RefKind::kFrame
                                                : html::RefKind::kImage);
    case Category::kAnalytics: return html::RefKind::kScript;
    case Category::kSocial:
      return rng.chance(0.6) ? html::RefKind::kScript : html::RefKind::kImage;
    case Category::kFonts: return html::RefKind::kStylesheet;
    case Category::kVideo:
      return rng.chance(0.6) ? html::RefKind::kMedia : html::RefKind::kImage;
    case Category::kImages: return html::RefKind::kImage;
    case Category::kCdn:
    case Category::kOrigin:
      return rng.chance(0.5) ? html::RefKind::kImage
                             : (rng.chance(0.5) ? html::RefKind::kScript
                                                : html::RefKind::kStylesheet);
  }
  return html::RefKind::kImage;
}

std::uint64_t pick_size(html::RefKind kind, util::Rng& rng) {
  switch (kind) {
    case html::RefKind::kScript:
      return static_cast<std::uint64_t>(rng.pareto(2e3, 2.5e5, 1.25));
    case html::RefKind::kStylesheet:
      return static_cast<std::uint64_t>(rng.pareto(1e3, 6e4, 1.4));
    case html::RefKind::kMedia:
      return static_cast<std::uint64_t>(rng.pareto(6e4, 9e5, 1.0));
    case html::RefKind::kFrame:
      return static_cast<std::uint64_t>(rng.pareto(4e3, 1.2e5, 1.3));
    case html::RefKind::kImage:
    case html::RefKind::kOther:
      return static_cast<std::uint64_t>(rng.pareto(3e3, 8e5, 1.15));
  }
  return 10'000;
}

const char* kind_extension(html::RefKind kind) {
  switch (kind) {
    case html::RefKind::kScript: return "js";
    case html::RefKind::kStylesheet: return "css";
    case html::RefKind::kMedia: return "mp4";
    case html::RefKind::kFrame: return "html";
    default: return "png";
  }
}

}  // namespace

Corpus::Corpus(CorpusConfig cfg) : cfg_(cfg) {
  net::NetworkConfig ncfg;
  ncfg.seed = cfg_.seed;
  ncfg.horizon_s = cfg_.horizon_s;
  universe_ = std::make_unique<WebUniverse>(ncfg);

  util::Rng provider_rng = util::Rng::forked(cfg_.seed, 1);
  build_providers(provider_rng);
  util::Rng site_rng = util::Rng::forked(cfg_.seed, 2);
  build_sites(site_rng);
}

void Corpus::build_providers(util::Rng& rng) {
  auto add_provider = [&](const std::string& name, Category category,
                          std::vector<std::string> domains) {
    // Chronic sickness and missing PoPs concentrate in the long tail:
    // providers are chosen by Zipf popularity, and head providers
    // (doubleclick, facebook, ...) are well-run -- their appearances in
    // Table 1 come from transient congestion, not permanent rot. Without
    // this, one chronically slow head provider becomes an outlier on
    // nearly every site and Fig. 2 saturates.
    const double rank_factor =
        std::min(1.0, 0.10 + double(providers_.size()) / 60.0);
    Provider p;
    p.name = name;
    p.category = category;
    p.domains = std::move(domains);
    p.region = pick_region(rng);

    FailureProfile prof = profile_for(category);
    net::ServerConfig scfg;
    scfg.name = "srv-" + name;
    scfg.region = p.region;
    // Stable per-provider service-time spread keeps the within-page MAD
    // honest: a perfectly homogeneous bulk collapses the MAD and turns
    // ordinary jitter into violations.
    scfg.base_processing_s =
        prof.base_processing_s * rng.lognormal_median(1.0, 0.08);
    scfg.bandwidth_bps = prof.bandwidth_bps;
    scfg.diurnal_amplitude = prof.diurnal_amplitude;
    scfg.congestion_rate_per_day = prof.congestion_rate_per_day;
    scfg.congestion_mean_severity = prof.congestion_mean_severity;
    // Short events: a congestion spell should not outlive a survey pass,
    // let alone a day (Fig. 3's ephemeral outliers).
    scfg.congestion_mean_duration_s = 2 * 3600.0;
    scfg.global_pops =
        rng.chance(1.0 - (1.0 - prof.global_pops_chance) * rank_factor);
    if (rng.chance(prof.chronic_chance * rank_factor)) {
      scfg.chronic_degradation =
          rng.uniform(prof.chronic_lo, prof.chronic_hi);
      p.chronically_degraded = true;
    }
    if (rng.chance(prof.blind_spot_chance * rank_factor)) {
      scfg.blind_spot_regions.insert(pick_region(rng));
      scfg.blind_spot_penalty = rng.uniform(3.0, 6.0);
      p.has_blind_spot = true;
    }
    p.timing_opt_in = rng.chance(timing_opt_in_chance(category));
    p.server = universe_->network().add_server(scfg);
    const net::IpAddr addr = universe_->network().server(p.server).addr();
    for (const auto& d : p.domains) universe_->dns().bind(d, addr);

    const std::size_t idx = providers_.size();
    for (const auto& d : p.domains) provider_by_domain_[d] = idx;
    providers_.push_back(std::move(p));
  };

  for (const auto& np : named_providers()) {
    std::vector<std::string> domains(np.domains.begin(), np.domains.end());
    add_provider(np.name, np.category, std::move(domains));
  }
  for (std::size_t i = providers_.size(); i < cfg_.num_providers; ++i) {
    Category c = pick_filler_category(rng);
    add_provider(util::format("provider%03zu", i), c, {filler_domain(c, i)});
  }
  // Regional providers: single-region services with no global footprint
  // (local CDNs, regional image hosts — the img1.qunarzz.com class). Far
  // clients reach them across an ocean, which is what the §5.3 replication
  // experiment exercises when its clients are "far".
  std::size_t regional_index = 0;
  for (net::Region region : net::all_regions()) {
    for (int j = 0; j < 5; ++j, ++regional_index) {
      Category c = pick_filler_category(rng);
      Provider p;
      p.name = util::format("regional%02zu", regional_index);
      p.category = c;
      p.domains = {util::format("r%02zu.%s", regional_index,
                                filler_domain(c, 200 + regional_index).c_str())};
      p.region = region;

      FailureProfile prof = profile_for(c);
      net::ServerConfig scfg;
      scfg.name = "srv-" + p.name;
      scfg.region = region;
      scfg.base_processing_s =
          prof.base_processing_s * rng.lognormal_median(1.0, 0.08);
      scfg.bandwidth_bps = prof.bandwidth_bps;
      scfg.diurnal_amplitude = prof.diurnal_amplitude;
      // Regional services run leaner operations than the global providers:
      // busier daily peaks, more frequent congestion, and a fair share of
      // chronically under-provisioned hosts.
      scfg.congestion_rate_per_day = prof.congestion_rate_per_day * 1.5;
      scfg.congestion_mean_severity = prof.congestion_mean_severity;
      scfg.congestion_mean_duration_s = 2 * 3600.0;
      scfg.diurnal_amplitude = prof.diurnal_amplitude * 1.5;
      if (rng.chance(0.25)) {
        scfg.chronic_degradation = rng.uniform(1.8, 4.0);
        p.chronically_degraded = true;
      }
      scfg.global_pops = false;
      p.timing_opt_in = rng.chance(timing_opt_in_chance(c) * 0.5);
      p.server = universe_->network().add_server(scfg);
      const net::IpAddr addr = universe_->network().server(p.server).addr();
      for (const auto& d : p.domains) universe_->dns().bind(d, addr);
      const std::size_t idx = providers_.size();
      for (const auto& d : p.domains) provider_by_domain_[d] = idx;
      providers_.push_back(std::move(p));
    }
  }
}

void Corpus::build_sites(util::Rng& /*unused: sites fork their own streams*/) {
  sites_.reserve(cfg_.num_sites);
  for (std::size_t i = 0; i < cfg_.num_sites; ++i) {
    std::string host;
    int forced_hosts = -1;
    if (i < paper_sites().size()) {
      host = paper_sites()[i].host;
      forced_hosts = paper_sites()[i].external_hosts;
    } else {
      host = util::format("site%03zu.com", i);
    }
    util::Rng site_rng = util::Rng::forked(cfg_.seed, 1000 + i);
    const net::Region forced_region = i < paper_sites().size()
                                          ? paper_sites()[i].region
                                          : net::Region::kNorthAmerica;
    sites_.push_back(
        build_site(i, host, forced_hosts, forced_region, site_rng));
  }
}

Site Corpus::build_site(std::size_t index, const std::string& host,
                        int forced_host_count, net::Region forced_region,
                        util::Rng& rng) {
  // Origin server.
  FailureProfile prof = profile_for(Category::kOrigin);
  net::ServerConfig ocfg;
  ocfg.name = "origin-" + host;
  ocfg.region = forced_host_count > 0 ? forced_region : pick_region(rng);
  ocfg.base_processing_s =
      prof.base_processing_s * rng.lognormal_median(1.0, 0.08);
  ocfg.bandwidth_bps = prof.bandwidth_bps;
  ocfg.diurnal_amplitude = prof.diurnal_amplitude;
  ocfg.congestion_rate_per_day = prof.congestion_rate_per_day;
  ocfg.congestion_mean_severity = prof.congestion_mean_severity;
  // Roughly half of popular sites are themselves CDN-fronted; the rest are
  // reached at their home region (their far-away clients see a slower but
  // *consistently* slower origin — which relative detection ignores). The
  // Table 2 sites model regional portals served from home: for their far
  // clients the origin and the region-local providers are slow *together*,
  // which keeps the per-client median honest and their rule activations
  // individual rather than common (Fig. 14, Table 3).
  ocfg.global_pops = forced_host_count > 0 ? false : rng.chance(0.85);
  const net::ServerId origin = universe_->network().add_server(ocfg);
  const net::IpAddr origin_ip = universe_->network().server(origin).addr();
  universe_->dns().bind(host, origin_ip);
  const std::string static_subdomain = "static." + host;
  const bool use_subdomain = rng.chance(0.4);
  if (use_subdomain) universe_->dns().bind(static_subdomain, origin_ip);

  SiteBuilder builder(*universe_, host, origin);

  // Structural draws.
  // Wide spread: the Alexa list mixes sprawling portals with near-trivial
  // landing pages, and the simple ones are what gives Fig. 2 its empty
  // bucket (a page contacting a handful of servers rarely has a 2-MAD
  // outlier population).
  std::size_t total = static_cast<std::size_t>(std::clamp(
      rng.lognormal_median(cfg_.median_objects, 0.80), 5.0, 150.0));
  const double logit = rng.normal(cfg_.external_fraction_logit_mean,
                                  cfg_.external_fraction_logit_sigma);
  const double ext_frac = 1.0 / (1.0 + std::exp(-logit));
  std::size_t ext_objs =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::lround(double(total) * ext_frac)));
  std::size_t n_hosts = std::clamp<std::size_t>(
      static_cast<std::size_t>(
          std::lround(double(ext_objs) / rng.uniform(1.8, 3.5))),
      1, 50);
  if (forced_host_count > 0) {
    n_hosts = static_cast<std::size_t>(forced_host_count);
    ext_objs = static_cast<std::size_t>(
        std::lround(double(n_hosts) * rng.uniform(1.8, 3.0)));
  }
  const std::size_t origin_objs = total > ext_objs ? total - ext_objs : 4;

  // Per-site matcher-tier weights, jittered around the corpus means.
  const double wd = std::clamp(rng.normal(cfg_.tier_direct, 0.13), 0.05, 0.90);
  const double wi = std::clamp(rng.normal(cfg_.tier_inline, 0.08), 0.0, 0.5);
  const double ws = std::clamp(rng.normal(cfg_.tier_script, 0.10), 0.0, 0.5);
  const double wh =
      std::max(0.02, 1.0 - wd - wi - ws);  // hidden residue
  const std::vector<double> tier_weights = {wd, wi, ws, wh};

  // Pick distinct providers for this site by popularity.
  std::vector<std::size_t> chosen;
  std::vector<bool> used(providers_.size(), false);
  // The Table 2 sites lean on region-local services the way real regional
  // portals do (ok.ru, qunar.com, ...): their home-region users see them
  // fast, everyone else pays trans-oceanic paths.
  const bool regional_bias = forced_host_count > 0;
  for (std::size_t k = 0; k < n_hosts && chosen.size() < providers_.size();
       ++k) {
    if (regional_bias && rng.chance(0.30)) {
      std::vector<std::size_t> candidates;
      for (std::size_t p = 0; p < providers_.size(); ++p) {
        const bool pops = universe_->network()
                              .server(providers_[p].server)
                              .config()
                              .global_pops;
        if (!used[p] && !pops && providers_[p].region == ocfg.region) {
          candidates.push_back(p);
        }
      }
      if (!candidates.empty()) {
        std::size_t p = candidates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(candidates.size()) - 1))];
        used[p] = true;
        chosen.push_back(p);
        continue;
      }
    }
    for (int attempt = 0; attempt < 32; ++attempt) {
      std::size_t p = rng.zipf(providers_.size(), cfg_.provider_popularity_zipf);
      if (!used[p]) {
        used[p] = true;
        chosen.push_back(p);
        break;
      }
    }
  }

  // Distribute external objects over hosts (at least one each).
  // At least two objects per host: single-object servers give the MAD
  // detector one noisy sample and nothing to average.
  std::vector<std::size_t> objs_per_host(chosen.size(), 2);
  for (std::size_t rem = ext_objs > 2 * chosen.size()
                             ? ext_objs - 2 * chosen.size()
                             : 0;
       rem > 0; --rem) {
    objs_per_host[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(chosen.size()) - 1))]++;
  }

  // Tier assignment per host, then emit.
  struct PendingInduced {
    SiteBuilder::Induced induced;
  };
  std::vector<SiteBuilder::Induced> script_tier_pending;
  std::vector<std::pair<std::string, Category>> direct_hosts;
  std::size_t obj_counter = 0;
  for (std::size_t k = 0; k < chosen.size(); ++k) {
    const Provider& prov = providers_[chosen[k]];
    const std::string& domain = prov.domains[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(prov.domains.size()) - 1))];
    const std::size_t tier = rng.weighted(tier_weights);
    for (std::size_t o = 0; o < objs_per_host[k]; ++o) {
      html::RefKind kind = pick_kind(prov.category, rng);
      std::uint64_t size = pick_size(kind, rng);
      const std::string path = util::format(
          "/%s/o%zu_%zu.%s", host.substr(0, host.find('.')).c_str(),
          index, obj_counter++, kind_extension(kind));
      switch (tier) {
        case 0:
          builder.add_direct(domain, path, kind, size, prov.category);
          if (o == 0) direct_hosts.emplace_back(domain, prov.category);
          break;
        case 1:
          builder.add_inline_loader(domain, path, size, prov.category);
          break;
        case 2:
          script_tier_pending.push_back(
              SiteBuilder::Induced{domain, path, kind, size, prov.category});
          break;
        default:
          builder.add_hidden(domain, path, kind, size, prov.category);
          break;
      }
    }
  }

  // Group script-tier objects under aggregator scripts hosted by ad/analytics
  // providers (the Fig. 6 pattern: page -> script on S1 -> object on S3).
  if (!script_tier_pending.empty()) {
    const std::size_t groups =
        std::max<std::size_t>(1, (script_tier_pending.size() + 3) / 4);
    for (std::size_t g = 0; g < groups; ++g) {
      std::vector<SiteBuilder::Induced> batch;
      for (std::size_t j = g; j < script_tier_pending.size(); j += groups) {
        batch.push_back(script_tier_pending[j]);
      }
      if (batch.empty()) continue;
      // Prefer an aggregator already referenced by this site so the
      // external-host count matches the tier draws (Table 2 selection
      // counts hosts, and a surprise aggregator would inflate it).
      std::string agg_domain;
      Category agg_category;
      if (!direct_hosts.empty()) {
        const auto& pick = direct_hosts[static_cast<std::size_t>(
            rng.uniform_int(0,
                            static_cast<std::int64_t>(direct_hosts.size()) - 1))];
        agg_domain = pick.first;
        agg_category = pick.second;
      } else {
        const Provider& agg = providers_[rng.zipf(
            providers_.size(), cfg_.provider_popularity_zipf)];
        agg_domain = agg.domains.front();
        agg_category = agg.category;
      }
      builder.add_script_with_induced(
          agg_domain,
          util::format("/s/%s/loader%zu.js",
                       host.substr(0, host.find('.')).c_str(), g),
          static_cast<std::uint64_t>(rng.pareto(4e3, 6e4, 1.3)), agg_category,
          batch);
    }
  }

  // Origin-served objects (some on an origin sub-domain, still "internal").
  for (std::size_t o = 0; o < origin_objs; ++o) {
    html::RefKind kind = pick_kind(Category::kOrigin, rng);
    const std::string path =
        util::format("/assets/a%zu.%s", o, kind_extension(kind));
    const std::string obj_host =
        (use_subdomain && rng.chance(0.5)) ? static_subdomain : "";
    builder.add_origin_object(path, kind, pick_size(kind, rng), obj_host);
  }

  builder.add_markup("<div class=\"footer\">generated corpus page</div>");
  Site site = builder.finish();
  // Stamp Timing-Allow-Origin on objects of opted-in providers.
  for (const auto& hu : site.external_hosts) {
    const Provider* prov = provider_of(hu.host);
    if (!prov || !prov->timing_opt_in) continue;
    for (const auto& url : hu.object_urls) {
      if (WebObject* obj = universe_->store().find_mutable(url)) {
        obj->timing_allow_origin = true;
      }
    }
  }
  return site;
}

const Site* Corpus::site_by_host(const std::string& host) const {
  for (const auto& s : sites_) {
    if (s.host == host) return &s;
  }
  return nullptr;
}

Category Corpus::category_of(const std::string& host) const {
  auto it = provider_by_domain_.find(host);
  if (it == provider_by_domain_.end()) return Category::kOrigin;
  return providers_[it->second].category;
}

const Provider* Corpus::provider_of(const std::string& host) const {
  auto it = provider_by_domain_.find(host);
  if (it == provider_by_domain_.end()) return nullptr;
  return &providers_[it->second];
}

}  // namespace oak::page
