// The synthetic "Alexa Top 500" corpus.
//
// Substitutes for the paper's measurement population (§2, §5.3). A Corpus is
// a WebUniverse populated with:
//  * a universe of third-party providers (ads, analytics, social, CDN,
//    fonts, video, image hosting) with Zipf popularity, realistic domains,
//    and per-category failure profiles (chronic degradation, congestion
//    weather, regional blind spots) — ads/analytics/social are the least
//    healthy, which is what makes Table 1 come out the way it does;
//  * 500 sites whose structural distributions are tuned to the paper's
//    measurements: median external-object fraction ≈ 0.75 (Fig. 1), wide
//    spread of external host counts (H1 = 5–15 hosts, H2 > 15, §5.3), and a
//    matcher-tier mix centered on 42% direct / +18% inline / +21% via
//    external script / ~19% hidden (Fig. 8).
//
// The first ten sites carry the hostnames of Table 2 so the H1/H2 selection
// in the §5.3 reproduction reads like the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "page/site.h"

namespace oak::page {

struct Provider {
  std::string name;
  Category category = Category::kCdn;
  std::vector<std::string> domains;
  net::ServerId server = net::kInvalidServer;
  net::Region region = net::Region::kNorthAmerica;
  bool chronically_degraded = false;
  bool has_blind_spot = false;
  // Sends Timing-Allow-Origin: the provider's objects stay visible to the
  // Resource Timing API fallback (paper §6). Rare in practice.
  bool timing_opt_in = false;
};

struct CorpusConfig {
  std::uint64_t seed = 42;
  std::size_t num_sites = 500;
  std::size_t num_providers = 120;
  double horizon_s = 14 * 86400.0;

  // Site structure.
  double median_objects = 28.0;
  double external_fraction_logit_mean = 1.10;  // sigmoid(1.10) ~ 0.75
  double external_fraction_logit_sigma = 0.90;

  // Matcher-tier weights (per-site jittered around these means). These are
  // set slightly below the Fig. 8 medians they produce, because tier-3
  // aggregator scripts are themselves extra direct references.
  double tier_direct = 0.40;
  double tier_inline = 0.17;
  double tier_script = 0.17;  // remainder is hidden

  double provider_popularity_zipf = 0.9;
};

class Corpus {
 public:
  explicit Corpus(CorpusConfig cfg = {});

  WebUniverse& universe() { return *universe_; }
  const WebUniverse& universe() const { return *universe_; }
  const std::vector<Site>& sites() const { return sites_; }
  const std::vector<Provider>& providers() const { return providers_; }
  const CorpusConfig& config() const { return cfg_; }

  const Site* site_by_host(const std::string& host) const;
  // Category of an external hostname; kOrigin for unknown/origin hosts.
  Category category_of(const std::string& host) const;
  // Provider owning a hostname, nullptr for origins.
  const Provider* provider_of(const std::string& host) const;

 private:
  void build_providers(util::Rng& rng);
  void build_sites(util::Rng& rng);
  Site build_site(std::size_t index, const std::string& host,
                  int forced_host_count, net::Region forced_region,
                  util::Rng& rng);

  CorpusConfig cfg_;
  std::unique_ptr<WebUniverse> universe_;
  std::vector<Provider> providers_;
  std::vector<Site> sites_;
  std::map<std::string, std::size_t> provider_by_domain_;
};

}  // namespace oak::page
