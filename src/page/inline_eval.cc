#include "page/inline_eval.h"

#include "html/tokenizer.h"

namespace oak::page {

namespace {
// Extract the string literal following `marker`, delimited by double quotes.
std::optional<std::string> quoted_after(std::string_view text,
                                        std::string_view marker) {
  std::size_t at = text.find(marker);
  if (at == std::string_view::npos) return {};
  std::size_t open = text.find('"', at + marker.size());
  if (open == std::string_view::npos) return {};
  std::size_t close = text.find('"', open + 1);
  if (close == std::string_view::npos) return {};
  return std::string(text.substr(open + 1, close - open - 1));
}
}  // namespace

std::optional<InlineLoad> evaluate_loader(std::string_view script_body) {
  // The loader idiom assigns the host to `var h="..."` and concatenates the
  // path literal after `+h+`.
  auto host = quoted_after(script_body, "var h=");
  if (!host || host->empty()) return {};
  auto path = quoted_after(script_body, "+h+");
  if (!path || path->empty() || (*path)[0] != '/') return {};
  return InlineLoad{std::move(*host), std::move(*path)};
}

std::vector<InlineLoad> evaluate_inline_scripts(std::string_view html) {
  std::vector<InlineLoad> out;
  for (const auto& script : html::inline_scripts(html)) {
    if (auto load = evaluate_loader(script.body)) {
      out.push_back(std::move(*load));
    }
  }
  return out;
}

}  // namespace oak::page
