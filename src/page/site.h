// Sites, the WebUniverse, and the SiteBuilder.
//
// A Site is one origin plus the ground truth of how it references external
// hosts — at which *tier* each host is reachable by Oak's matcher:
//   kDirect            explicit src/href attribute (matcher tier 1)
//   kInlineScript      hostname appears in an inline programmatic loader
//                      (matcher tier 2)
//   kViaExternalScript induced by an external script whose body names the
//                      host (matcher tier 3)
//   kHidden            built by opaque dynamic code; no tier can match it
// The tier mix drives Fig. 8.
//
// The WebUniverse owns the simulated network, the object store, and the
// origin-server request handlers (plain site servers or Oak-enabled ones).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "http/message.h"
#include "net/network.h"
#include "page/object.h"

namespace oak::page {

enum class RefTier { kDirect, kInlineScript, kViaExternalScript, kHidden };

std::string to_string(RefTier t);

struct HostUse {
  std::string host;
  RefTier tier = RefTier::kDirect;
  Category category = Category::kCdn;
  std::vector<std::string> object_urls;
};

struct Site {
  std::string host;
  net::ServerId origin_server = net::kInvalidServer;
  std::string index_path = "/index.html";
  std::vector<HostUse> external_hosts;
  std::size_t origin_object_count = 0;

  std::string index_url() const { return "http://" + host + index_path; }
  std::size_t external_object_count() const;
  // Distinct external hostnames (what H1/H2 site selection counts).
  std::size_t external_host_count() const { return external_hosts.size(); }
};

class WebUniverse {
 public:
  explicit WebUniverse(net::NetworkConfig cfg = {});

  net::Network& network() { return net_; }
  const net::Network& network() const { return net_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }
  net::Dns& dns() { return net_.dns(); }
  const net::Dns& dns() const { return net_.dns(); }

  // Dynamic origin handler (e.g. an Oak server). Static objects need none.
  using Handler =
      std::function<http::Response(const http::Request&, double now)>;
  void set_handler(const std::string& host, Handler h);
  const Handler* handler(const std::string& host) const;

 private:
  net::Network net_;
  ObjectStore store_;
  std::map<std::string, Handler> handlers_;
};

// Incrementally assembles one site's index page and object-store entries.
// Hostnames referenced here must be bound in DNS by the caller.
class SiteBuilder {
 public:
  // `page_path` lets one site carry several pages (the index plus sub-pages
  // like "/article.html"); rules with narrow scopes apply per path, while
  // site-wide rules learned on one page carry to the others (§4.2.4).
  SiteBuilder(WebUniverse& universe, std::string site_host,
              net::ServerId origin_server,
              std::string page_path = "/index.html");

  // An object served by the origin itself (relative reference; never subject
  // to provider switching). `host` defaults to the site host but may be an
  // origin sub-domain, which Fig. 1 still counts as non-external.
  SiteBuilder& add_origin_object(const std::string& path, html::RefKind kind,
                                 std::uint64_t size,
                                 const std::string& host = "");

  // Tier 1: explicit tag referencing an external object.
  SiteBuilder& add_direct(const std::string& host, const std::string& path,
                          html::RefKind kind, std::uint64_t size,
                          Category category);

  // Tier 2: inline programmatic loader for one external object.
  SiteBuilder& add_inline_loader(const std::string& host,
                                 const std::string& path, std::uint64_t size,
                                 Category category);

  struct Induced {
    std::string host;
    std::string path;
    html::RefKind kind = html::RefKind::kImage;
    std::uint64_t size = 0;
    Category category = Category::kAds;
  };
  // Tier 3: an external script (itself a tier-1 reference on `script_host`)
  // whose body names and induces further objects on other hosts.
  SiteBuilder& add_script_with_induced(const std::string& script_host,
                                       const std::string& script_path,
                                       std::uint64_t script_size,
                                       Category script_category,
                                       const std::vector<Induced>& induced);

  // Hidden: fetched during the load but reachable through no rule text.
  SiteBuilder& add_hidden(const std::string& host, const std::string& path,
                          html::RefKind kind, std::uint64_t size,
                          Category category);

  // Arbitrary extra markup (ad slots, text) — makes rules non-trivial.
  SiteBuilder& add_markup(const std::string& html_fragment);

  // Assemble the index page, store it, and return the site's ground truth.
  Site finish(double index_max_age_s = 0.0);

 private:
  std::string object_url(const std::string& host, const std::string& path) {
    return "http://" + host + path;
  }
  WebObject make_object(const std::string& host, const std::string& path,
                        html::RefKind kind, std::uint64_t size,
                        Category category, double max_age_s);
  HostUse& host_use(const std::string& host, RefTier tier, Category category);

  WebUniverse& universe_;
  Site site_;
  std::vector<std::string> head_;
  std::vector<std::string> body_;
  std::vector<std::string> hidden_induced_;
};

// Default cacheability by kind/category used by generators: ads/analytics are
// uncacheable, images/styles cache for an hour, scripts for ten minutes.
double default_max_age(html::RefKind kind, Category category);

}  // namespace oak::page
