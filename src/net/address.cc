#include "net/address.h"

#include <cstdio>

#include "util/strings.h"

namespace oak::net {

std::string IpAddr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<IpAddr> IpAddr::parse(const std::string& dotted) {
  auto parts = util::split(dotted, '.');
  if (parts.size() != 4) return {};
  std::uint32_t v = 0;
  for (const auto& p : parts) {
    if (p.empty() || p.size() > 3) return {};
    int octet = 0;
    for (char c : p) {
      if (c < '0' || c > '9') return {};
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) return {};
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return IpAddr(v);
}

bool IpAddr::in_subnet(IpAddr base, int prefix_len) const {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return value_ == base.value_;
  const std::uint32_t mask = ~((1u << (32 - prefix_len)) - 1u);
  return (value_ & mask) == (base.value_ & mask);
}

}  // namespace oak::net
