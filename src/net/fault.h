// Deterministic fault injection for the simulated network.
//
// The base network model makes every fetch *complete*; real third parties
// also *fail* — outages, DNS breakage, stalled or reset transfers — and a
// dead server blocks a page far worse than a slow one while producing no
// timing sample at all for the MAD detector to see. The injector attaches a
// seed-driven fault schedule to the Network: windows scoped per server, per
// time interval, optionally per client (mirroring the paper's Fig. 14
// finding that most trouble is individual, not common) and optionally
// flapping (periodic up/down inside the window). Everything is a pure
// function of (seed, server, client, time), so two runs of the same
// schedule produce byte-identical results.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/server.h"

namespace oak::net {

using ClientId = std::uint32_t;

// Timing decomposition of one object fetch, in seconds.
struct FetchTiming {
  double dns = 0.0;       // 0 when resolved from the client's cache
  double connect = 0.0;   // 0 when a connection was reused
  double ttfb = 0.0;      // request RTT + server processing
  double download = 0.0;  // body transfer
  double total() const { return dns + connect + ttfb + download; }
};

// What the operator schedules (the cause).
enum class FaultType : unsigned char {
  kConnectRefused,  // nothing listening: SYN answered with RST
  kDnsNxdomain,     // authoritative NXDOMAIN (fast, definite)
  kDnsBlackhole,    // resolver queries dropped; burns the resolver timeout
  kStall,           // transfer begins, then no further bytes ever arrive
  kTruncate,        // connection reset partway through the body
};

std::string_view to_string(FaultType t);

// What the client observes (the symptom). A stall and a merely-slow fetch
// are indistinguishable from the browser's side: both surface as kTimeout.
enum class FetchErrorType : unsigned char {
  kNone = 0,
  kDns,        // definite resolution failure (NXDOMAIN)
  kDnsTimeout, // resolution never answered
  kRefused,    // connection refused
  kTimeout,    // fetch exceeded the caller's budget (stall or just slow)
  kTruncated,  // transfer ended before the full body arrived
};

// Wire code carried in report entries ("dns", "refused", "timeout", ...).
std::string_view error_code(FetchErrorType t);
// Inverse of error_code; kNone for empty or unknown codes.
FetchErrorType error_from_code(std::string_view code);

struct FetchError {
  FetchErrorType type = FetchErrorType::kNone;
  double elapsed_s = 0.0;  // time burned before the failure surfaced
};

// Result of one fetch attempt: a timing decomposition or a typed error.
struct FetchOutcome {
  FetchTiming timing;  // meaningful only when !failed()
  FetchError error;
  bool failed() const { return error.type != FetchErrorType::kNone; }
  // Wall-clock the attempt consumed, success or not.
  double elapsed() const {
    return failed() ? error.elapsed_s : timing.total();
  }
};

// One scheduled fault interval on one server.
struct FaultWindow {
  ServerId server = kInvalidServer;
  FaultType type = FaultType::kConnectRefused;
  double start = 0.0;
  double end = 0.0;  // exclusive
  // Fraction of clients affected in [0,1]. Membership is a stable draw per
  // (seed, window, client): the same clients suffer for the window's whole
  // lifetime — individual trouble, not common (Fig. 14).
  double client_fraction = 1.0;
  // Flapping: when period > 0, the fault is only active during the first
  // `duty` fraction of each period inside [start, end).
  double flap_period_s = 0.0;
  double flap_duty = 1.0;
};

struct FaultInjectorConfig {
  double resolver_timeout_s = 5.0;  // burned by a blackholed resolution
  // Body fraction delivered before a stall stops or a truncation resets.
  double cut_fraction = 0.5;
  // A stall with no caller timeout budget still ends eventually (the OS
  // gives up); bounds the burn when timeout_s == 0.
  double max_stall_s = 300.0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(FaultInjectorConfig cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  // Returns the index of the added window (usable as a stable id).
  std::size_t add_window(FaultWindow w);
  void clear() { windows_.clear(); }
  bool empty() const { return windows_.empty(); }
  const std::vector<FaultWindow>& windows() const { return windows_; }
  const FaultInjectorConfig& config() const { return cfg_; }
  FaultInjectorConfig& config() { return cfg_; }

  // The fault active for (server, client, t), or nullptr. Earliest-added
  // window wins when several overlap (deterministic).
  const FaultWindow* active(ServerId s, ClientId c, double t) const;

  // True when the stable per-(seed, window, client) draw puts `c` in the
  // window's affected set.
  bool affects(const FaultWindow& w, std::size_t window_index,
               ClientId c) const;

 private:
  FaultInjectorConfig cfg_;
  std::uint64_t seed_ = 0;
  std::vector<FaultWindow> windows_;
};

}  // namespace oak::net
