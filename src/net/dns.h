// Simulated DNS: the authoritative registry mapping hostnames to server IPs.
//
// Several paper mechanisms hinge on the domain/IP split:
//  * report grouping is by IP, "keeping track of all related domain names"
//    (multiple CDN hostnames can share one front-end IP);
//  * rule matching ties a violator IP back to the domains that reach it;
//  * Fig. 1/2 distinguish origin sub-domains from external hosts.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"

namespace oak::net {

class Dns {
 public:
  // Bind a hostname to an address. Re-binding replaces the old record
  // (used to emulate providers moving between front-ends over time).
  void bind(const std::string& host, IpAddr addr);
  void unbind(const std::string& host);

  std::optional<IpAddr> resolve(const std::string& host) const;
  // All hostnames bound to `addr` (deterministic order).
  std::vector<std::string> reverse(IpAddr addr) const;
  bool has(const std::string& host) const;
  std::size_t size() const { return forward_.size(); }

  std::vector<std::string> all_hosts() const;

 private:
  std::map<std::string, IpAddr> forward_;
};

}  // namespace oak::net
