// Geographic regions and the base round-trip-time matrix between them.
//
// The paper's testbed spans PlanetLab nodes in North America, Europe and
// Asia/Oceania (§5: 25 clients, half NA, rest split EU/AS+OC). Region-pair
// base RTTs are the backbone of the simulated network; per-path and per-fetch
// jitter is layered on top by oak::net::Network.
#pragma once

#include <array>
#include <string>

namespace oak::net {

enum class Region {
  kNorthAmerica = 0,
  kEurope = 1,
  kAsia = 2,
  kOceania = 3,
  kSouthAmerica = 4,
};

inline constexpr std::size_t kNumRegions = 5;

std::string to_string(Region r);
// Short labels used in experiment output ("NA", "EU", "AS", "OC", "SA").
std::string region_code(Region r);

// Base round-trip time between two regions, in seconds. Symmetric.
// Values approximate public inter-region medians (e.g. NA<->NA ~45ms,
// NA<->EU ~100ms, NA<->AS ~170ms, EU<->AS ~230ms).
double base_rtt(Region a, Region b);

// All regions, for iteration in tests and generators.
std::array<Region, kNumRegions> all_regions();

}  // namespace oak::net
