// The simulated wide-area network: clients, servers, paths and the
// transfer-time model.
//
// This replaces the paper's real Internet between PlanetLab vantage points
// and production servers. A fetch decomposes into DNS + TCP connect + TTFB +
// download, each derived from the region-pair base RTT, a stable per-path
// factor (some client/server pairs are just worse), per-fetch lognormal
// jitter (multiplicative, so spread grows with distance — the property behind
// Fig. 9's region-dependent detection thresholds) and the server's load at
// that moment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/dns.h"
#include "net/fault.h"
#include "net/geo.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace oak::net {

struct ClientConfig {
  std::string name;
  Region region = Region::kNorthAmerica;
  double downlink_bps = 50e6;
  double last_mile_rtt_s = 0.010;  // access-network contribution to RTT
  double jitter_sigma = 0.35;      // sigma of per-fetch lognormal jitter
};

struct Client {
  ClientId id = 0;
  IpAddr addr;
  ClientConfig cfg;
};

struct NetworkConfig {
  std::uint64_t seed = 1;
  // Schedule horizon for server congestion weather. Experiments that run
  // longer than this see no transient events past the horizon.
  double horizon_s = 14 * 86400.0;
};

class Network {
 public:
  explicit Network(NetworkConfig cfg = {});

  ServerId add_server(ServerConfig cfg);
  ClientId add_client(ClientConfig cfg);

  Server& server(ServerId id) { return *servers_.at(id); }
  const Server& server(ServerId id) const { return *servers_.at(id); }
  const Client& client(ClientId id) const { return clients_.at(id); }
  std::size_t server_count() const { return servers_.size(); }
  std::size_t client_count() const { return clients_.size(); }

  Dns& dns() { return dns_; }
  const Dns& dns() const { return dns_; }

  // The fault schedule consulted by fetch_outcome(). Deterministic in
  // (network seed, server, client, time); empty by default.
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  // Server lookup by IP; kInvalidServer when unknown.
  ServerId server_by_ip(IpAddr addr) const;

  // Mean RTT of the path (no per-fetch jitter), useful for tests.
  double path_rtt(ClientId c, ServerId s) const;

  // Compute the timing of fetching `bytes` from `s` by `c` starting at
  // simulated time `t`. `rng` supplies the per-fetch jitter (owned by the
  // caller so each client's randomness is an independent, reproducible
  // stream). `cold_dns` / `new_connection` say whether those phases are paid.
  FetchTiming fetch(ClientId c, ServerId s, std::uint64_t bytes, double t,
                    util::Rng& rng, bool cold_dns = true,
                    bool new_connection = true) const;

  // Failure-aware fetch: consults the fault schedule and the caller's
  // per-fetch budget, returning either the timing or a typed error with the
  // time burned before failing. With no active fault and `timeout_s` not
  // exceeded, the timing (and the rng stream consumed) is identical to
  // fetch(). `timeout_s` == 0 disables the budget. DNS-class faults only
  // apply when `cold_dns` (a cached name needs no resolution).
  FetchOutcome fetch_outcome(ClientId c, ServerId s, std::uint64_t bytes,
                             double t, util::Rng& rng, bool cold_dns = true,
                             bool new_connection = true,
                             double timeout_s = 0.0) const;

  std::uint64_t seed() const { return cfg_.seed; }

  // Attach a metrics registry: every fetch_outcome() then counts attempts,
  // per-cause failures ("oak_net_fetch_failures_total_<code>") and fault
  // activations by scheduled type ("oak_net_fault_activations_total_<type>").
  // The registry must outlive the network; counters are atomic, so fetches
  // from many browser threads record safely. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* registry);

  // Day-scale multiplicative route weather between a client's access
  // network and a server (deterministic in (seed, server, client, day)).
  // Client-level, not region-level: most routing trouble is specific to one eyeball network, which is why most of Oak's rule activations are
  // individual rather than common (paper Fig. 14).
  double route_weather(ClientId c, ServerId s, double t) const;

 private:
  // Stable per-(client, server) path quality multiplier >= ~0.7.
  double path_factor(ClientId c, ServerId s) const;

  // Instrument pointers resolved once in set_metrics(); null when detached.
  // Indexed by the enum values, which are dense from 0.
  struct NetMetrics {
    obs::Counter* fetches = nullptr;
    obs::Counter* failures[6] = {};           // FetchErrorType (kNone unused)
    obs::Counter* fault_activations[5] = {};  // FaultType
  };

  NetworkConfig cfg_;
  Dns dns_;
  FaultInjector faults_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<Client> clients_;
  NetMetrics metrics_;
};

}  // namespace oak::net
