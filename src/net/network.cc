#include "net/network.h"

#include <algorithm>
#include <cmath>

namespace oak::net {

namespace {
// Client address blocks per region, so subnet-based policies have something
// meaningful to discriminate on.
IpAddr client_block(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return IpAddr(24, 0, 0, 0);
    case Region::kEurope: return IpAddr(81, 0, 0, 0);
    case Region::kAsia: return IpAddr(119, 0, 0, 0);
    case Region::kOceania: return IpAddr(133, 0, 0, 0);
    case Region::kSouthAmerica: return IpAddr(177, 0, 0, 0);
  }
  return IpAddr(10, 0, 0, 0);
}
}  // namespace

Network::Network(NetworkConfig cfg)
    : cfg_(cfg), faults_(FaultInjectorConfig{}, cfg.seed) {}

ServerId Network::add_server(ServerConfig scfg) {
  const ServerId id = static_cast<ServerId>(servers_.size());
  // Server IPs: 10.(id/256).(id%256).1
  IpAddr addr(10, static_cast<std::uint8_t>(id / 256),
              static_cast<std::uint8_t>(id % 256), 1);
  servers_.push_back(
      std::make_unique<Server>(id, addr, std::move(scfg), cfg_.seed,
                               cfg_.horizon_s));
  return id;
}

ClientId Network::add_client(ClientConfig ccfg) {
  const ClientId id = static_cast<ClientId>(clients_.size());
  IpAddr base = client_block(ccfg.region);
  IpAddr addr(base.value() + (std::uint32_t(id) << 8) + 2);
  clients_.push_back(Client{id, addr, std::move(ccfg)});
  return id;
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = NetMetrics{};
  if (registry == nullptr) return;
  metrics_.fetches = &registry->counter("oak_net_fetches_total");
  // Suffix the per-cause counters with the wire strings, '-' mapped to '_'
  // to stay inside the Prometheus name grammar.
  const auto sanitized = [](std::string_view s) {
    std::string out(s);
    std::replace(out.begin(), out.end(), '-', '_');
    return out;
  };
  for (unsigned char e = 1; e <= 5; ++e) {
    const auto type = static_cast<FetchErrorType>(e);
    metrics_.failures[e] = &registry->counter(
        "oak_net_fetch_failures_total_" + sanitized(error_code(type)));
  }
  for (unsigned char f = 0; f < 5; ++f) {
    const auto type = static_cast<FaultType>(f);
    metrics_.fault_activations[f] = &registry->counter(
        "oak_net_fault_activations_total_" + sanitized(to_string(type)));
  }
}

ServerId Network::server_by_ip(IpAddr addr) const {
  for (const auto& s : servers_) {
    if (s->addr() == addr) return s->id();
  }
  return kInvalidServer;
}

double Network::path_factor(ClientId c, ServerId s) const {
  // A stable draw per (client, server) pair: median 1.0, sigma 0.12. Kept
  // deliberately mild — persistent path badness is modeled explicitly via
  // blind spots; a heavy-tailed factor here would hand every client a few
  // permanently terrible paths to popular providers and saturate the
  // §2 outlier survey.
  util::Rng rng = util::Rng::forked(
      cfg_.seed, 0x9e3779b9ull * (c + 1) ^ 0x85ebca6bull * (s + 1));
  return std::max(0.85, rng.lognormal_median(1.0, 0.06));
}

double Network::path_rtt(ClientId c, ServerId s) const {
  const Client& cl = clients_.at(c);
  const Server& sv = *servers_.at(s);
  // Globally-distributed providers serve from a PoP in the client's own
  // region; everyone else is reached at their home region.
  const Region server_side =
      sv.config().global_pops ? cl.cfg.region : sv.region();
  double rtt = base_rtt(cl.cfg.region, server_side) + cl.cfg.last_mile_rtt_s;
  rtt *= path_factor(c, s);
  rtt *= sv.rtt_multiplier(cl.cfg.region);
  return rtt;
}

double Network::route_weather(ClientId c, ServerId s, double t) const {
  // Day-scale route weather: conditions between one client's access network
  // and a server drift on the order of days. This is what makes roughly
  // half of all observed outliers ephemeral (paper Fig. 3), keeps the
  // per-page MAD wide enough that only real deviations trip the 2-MAD rule,
  // and — being client-specific — makes most rule activations individual
  // rather than common (Fig. 14).
  const std::uint64_t day = static_cast<std::uint64_t>(t / 86400.0);
  util::Rng rng = util::Rng::forked(
      cfg_.seed, 0xfeedull + s * 40961ull + day * 131ull +
                     static_cast<std::uint64_t>(c) * 2654435761ull);
  // Mostly calm, with occasional clearly-bad days: a pure lognormal would
  // flag a scale-free ~10% of servers per page regardless of sigma, far
  // above the §2 measurements.
  double w = rng.lognormal_median(1.0, 0.13);
  if (rng.chance(0.06)) w *= rng.uniform(1.5, 4.0);
  return w;
}

FetchTiming Network::fetch(ClientId c, ServerId s, std::uint64_t bytes,
                           double t, util::Rng& rng, bool cold_dns,
                           bool new_connection) const {
  const Client& cl = clients_.at(c);
  const Server& sv = *servers_.at(s);

  const double mean_rtt = path_rtt(c, s) * route_weather(c, s, t);
  const double sigma = cl.cfg.jitter_sigma;
  // Per-fetch RTT with multiplicative jitter: spread scales with distance.
  const double rtt = mean_rtt * rng.lognormal_median(1.0, sigma);

  FetchTiming ft;
  if (cold_dns) {
    // The recursive resolver sits in the client's access network; resolution
    // cost is last-mile latency plus resolver work, not path RTT.
    ft.dns = cl.cfg.last_mile_rtt_s +
             0.025 * rng.lognormal_median(1.0, sigma);
  }
  if (new_connection) {
    ft.connect = 1.5 * rtt;  // SYN/SYN-ACK + first-byte readiness
  }
  // Server-side service time is itself noisy (queueing, GC pauses, cold
  // caches): heavy per-request variability, independent of path jitter.
  // The operator-injected delay (Fig. 9's knob) is a deliberate fixed stall
  // and stays additive.
  const double service =
      sv.processing_delay(t, cl.cfg.region) - sv.injected_delay();
  ft.ttfb = 0.5 * rtt + service * rng.lognormal_median(1.0, 0.8) +
            sv.injected_delay();

  const double bw = std::min(cl.cfg.downlink_bps, sv.effective_bandwidth_bps(t)) *
                    rng.lognormal_median(1.0, sigma);
  // Slow-start approximation: small transfers are window-limited and pay
  // extra round trips; large transfers converge to the bottleneck rate.
  const double bulk = static_cast<double>(bytes) * 8.0 / bw;
  // Mild slow-start penalty (IW10): kept small so that a server's average
  // small-object *time* reflects the path and the server, not the accident
  // of its object-size mix — the paper calls out exactly this confound
  // ("the variation in file size, and therefore the relative cost of
  // overhead", §4.2).
  const double window_rtts =
      std::log2(1.0 + static_cast<double>(bytes) / (10.0 * 1460.0));
  ft.download = bulk + rtt * window_rtts * 0.10;
  return ft;
}

FetchOutcome Network::fetch_outcome(ClientId c, ServerId s,
                                    std::uint64_t bytes, double t,
                                    util::Rng& rng, bool cold_dns,
                                    bool new_connection,
                                    double timeout_s) const {
  FetchOutcome out;
  const FaultWindow* fault = faults_.active(s, c, t);
  // DNS-class faults only bite when the name actually needs resolving; a
  // warm client cache sails past a broken resolver chain.
  if (fault != nullptr &&
      (fault->type == FaultType::kDnsNxdomain ||
       fault->type == FaultType::kDnsBlackhole) &&
      !cold_dns) {
    fault = nullptr;
  }

  if (metrics_.fetches != nullptr) {
    metrics_.fetches->inc();
    if (fault != nullptr) {
      metrics_.fault_activations[static_cast<unsigned char>(fault->type)]
          ->inc();
    }
  }
  // Count the per-cause failure once the outcome is known, whichever return
  // path produced it.
  struct FailureCount {
    const NetMetrics& m;
    const FetchOutcome& o;
    ~FailureCount() {
      if (o.failed() && m.fetches != nullptr) {
        m.failures[static_cast<unsigned char>(o.error.type)]->inc();
      }
    }
  } count_failure{metrics_, out};

  if (fault == nullptr) {
    out.timing = fetch(c, s, bytes, t, rng, cold_dns, new_connection);
    if (timeout_s > 0.0 && out.timing.total() > timeout_s) {
      out.error = FetchError{FetchErrorType::kTimeout, timeout_s};
    }
    return out;
  }

  const Client& cl = clients_.at(c);
  const double sigma = cl.cfg.jitter_sigma;
  const FaultInjectorConfig& fcfg = faults_.config();
  const auto cap = [&](double elapsed, FetchErrorType type) {
    if (timeout_s > 0.0 && elapsed > timeout_s) {
      return FetchError{FetchErrorType::kTimeout, timeout_s};
    }
    return FetchError{type, elapsed};
  };

  switch (fault->type) {
    case FaultType::kDnsNxdomain: {
      // NXDOMAIN is definite and cheap: the resolver answers at its normal
      // cost, just with an error.
      const double elapsed =
          cl.cfg.last_mile_rtt_s + 0.025 * rng.lognormal_median(1.0, sigma);
      out.error = cap(elapsed, FetchErrorType::kDns);
      return out;
    }
    case FaultType::kDnsBlackhole: {
      // Queries vanish; the client burns the full resolver timeout (or its
      // own smaller budget).
      const double elapsed = timeout_s > 0.0
                                 ? std::min(fcfg.resolver_timeout_s, timeout_s)
                                 : fcfg.resolver_timeout_s;
      out.error = FetchError{elapsed >= timeout_s && timeout_s > 0.0
                                 ? FetchErrorType::kTimeout
                                 : FetchErrorType::kDnsTimeout,
                             elapsed};
      return out;
    }
    case FaultType::kConnectRefused: {
      // SYN answered with RST: one RTT (plus resolution when cold).
      const double rtt = path_rtt(c, s) * route_weather(c, s, t) *
                         rng.lognormal_median(1.0, sigma);
      double elapsed = rtt;
      if (cold_dns) {
        elapsed +=
            cl.cfg.last_mile_rtt_s + 0.025 * rng.lognormal_median(1.0, sigma);
      }
      out.error = cap(elapsed, FetchErrorType::kRefused);
      return out;
    }
    case FaultType::kStall: {
      // The transfer starts normally and then nothing more ever arrives;
      // the client waits out its whole budget.
      const FetchTiming ft = fetch(c, s, bytes, t, rng, cold_dns,
                                   new_connection);
      const double surfaced = ft.dns + ft.connect + ft.ttfb +
                              fcfg.cut_fraction * ft.download;
      const double elapsed = timeout_s > 0.0
                                 ? timeout_s
                                 : surfaced + fcfg.max_stall_s;
      out.error = FetchError{FetchErrorType::kTimeout, elapsed};
      return out;
    }
    case FaultType::kTruncate: {
      // Connection reset partway through the body: fails at the cut point.
      const FetchTiming ft = fetch(c, s, bytes, t, rng, cold_dns,
                                   new_connection);
      const double elapsed = ft.dns + ft.connect + ft.ttfb +
                             fcfg.cut_fraction * ft.download;
      out.error = cap(elapsed, FetchErrorType::kTruncated);
      return out;
    }
  }
  out.timing = fetch(c, s, bytes, t, rng, cold_dns, new_connection);
  return out;
}

}  // namespace oak::net
