// IPv4-style addresses for the simulated network.
//
// Oak groups report entries "by the IP address to which the client
// ultimately connected, keeping track of all related domain names"
// (paper §4.2). Addresses therefore need identity and printing, nothing else.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace oak::net {

class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : value_(v) {}
  constexpr IpAddr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::uint8_t d)
      : value_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
               (std::uint32_t(c) << 8) | std::uint32_t(d)) {}

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;
  static std::optional<IpAddr> parse(const std::string& dotted);

  // /prefix_len subnet membership, used by client-discriminating policies.
  bool in_subnet(IpAddr base, int prefix_len) const;

  friend constexpr auto operator<=>(IpAddr, IpAddr) = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace oak::net

template <>
struct std::hash<oak::net::IpAddr> {
  std::size_t operator()(oak::net::IpAddr ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
