#include "net/server.h"

#include <algorithm>
#include <cmath>

namespace oak::net {

namespace {
constexpr double kDay = 86400.0;

double region_utc_offset_hours(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return -6.0;
    case Region::kEurope: return 1.0;
    case Region::kAsia: return 8.0;
    case Region::kOceania: return 10.0;
    case Region::kSouthAmerica: return -4.0;
  }
  return 0.0;
}
}  // namespace

double local_hour(Region r, double t) {
  double hours = t / 3600.0 + region_utc_offset_hours(r);
  double h = std::fmod(hours, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

double diurnal_shape(double local_hour) {
  // Raised cosine centered at 14:00 local, zero between 22:00 and 06:00.
  double x = local_hour - 14.0;
  if (x < -12.0) x += 24.0;
  if (x > 12.0) x -= 24.0;
  if (std::fabs(x) >= 8.0) return 0.0;
  return 0.5 * (1.0 + std::cos(x * 3.14159265358979323846 / 8.0));
}

Server::Server(ServerId id, IpAddr addr, ServerConfig cfg, std::uint64_t seed,
               double horizon_s)
    : id_(id), addr_(addr), cfg_(std::move(cfg)) {
  // Draw the transient congestion schedule deterministically from the seed.
  if (cfg_.congestion_rate_per_day > 0.0 && horizon_s > 0.0) {
    util::Rng rng = util::Rng::forked(seed, id_ * 7919ull + 13ull);
    const double mean_gap = kDay / cfg_.congestion_rate_per_day;
    double t = rng.exponential(mean_gap);
    while (t < horizon_s) {
      CongestionEvent ev;
      ev.start = t;
      ev.end = t + std::max(60.0, rng.exponential(cfg_.congestion_mean_duration_s));
      ev.severity =
          std::max(0.5, rng.exponential(cfg_.congestion_mean_severity));
      events_.push_back(ev);
      t = ev.end + rng.exponential(mean_gap);
    }
  }
}

double Server::load(double t) const {
  double l = cfg_.diurnal_amplitude * diurnal_shape(local_hour(cfg_.region, t));
  for (const auto& ev : events_) {
    if (ev.start > t) break;
    if (t < ev.end) l += ev.severity;
  }
  return l;
}

bool Server::congested(double t) const {
  for (const auto& ev : events_) {
    if (ev.start > t) break;
    if (t < ev.end) return true;
  }
  return false;
}

double Server::processing_delay(double t, Region client_region) const {
  double d = cfg_.base_processing_s * (1.0 + load(t)) * cfg_.chronic_degradation;
  if (cfg_.blind_spot_regions.count(client_region)) {
    d *= cfg_.blind_spot_penalty;
  }
  return d + injected_delay_s_;
}

double Server::effective_bandwidth_bps(double t) const {
  return cfg_.bandwidth_bps / ((1.0 + load(t)) * cfg_.chronic_degradation);
}

double Server::rtt_multiplier(Region client_region) const {
  if (cfg_.blind_spot_regions.count(client_region)) {
    return cfg_.blind_spot_penalty;
  }
  return 1.0;
}

}  // namespace oak::net
