#include "net/fault.h"

#include <cmath>

#include "util/rng.h"

namespace oak::net {

std::string_view to_string(FaultType t) {
  switch (t) {
    case FaultType::kConnectRefused: return "connect-refused";
    case FaultType::kDnsNxdomain: return "dns-nxdomain";
    case FaultType::kDnsBlackhole: return "dns-blackhole";
    case FaultType::kStall: return "stall";
    case FaultType::kTruncate: return "truncate";
  }
  return "?";
}

std::string_view error_code(FetchErrorType t) {
  switch (t) {
    case FetchErrorType::kNone: return "";
    case FetchErrorType::kDns: return "dns";
    case FetchErrorType::kDnsTimeout: return "dns_timeout";
    case FetchErrorType::kRefused: return "refused";
    case FetchErrorType::kTimeout: return "timeout";
    case FetchErrorType::kTruncated: return "trunc";
  }
  return "";
}

FetchErrorType error_from_code(std::string_view code) {
  if (code == "dns") return FetchErrorType::kDns;
  if (code == "dns_timeout") return FetchErrorType::kDnsTimeout;
  if (code == "refused") return FetchErrorType::kRefused;
  if (code == "timeout") return FetchErrorType::kTimeout;
  if (code == "trunc") return FetchErrorType::kTruncated;
  return FetchErrorType::kNone;
}

std::size_t FaultInjector::add_window(FaultWindow w) {
  windows_.push_back(w);
  return windows_.size() - 1;
}

bool FaultInjector::affects(const FaultWindow& w, std::size_t window_index,
                            ClientId c) const {
  if (w.client_fraction >= 1.0) return true;
  if (w.client_fraction <= 0.0) return false;
  // A stable membership draw: pure function of (seed, window, client), so a
  // window torments the same clients for its entire lifetime.
  util::Rng rng = util::Rng::forked(
      seed_, 0xfa071ull + window_index * 2654435761ull +
                 static_cast<std::uint64_t>(c) * 40503ull);
  return rng.uniform(0.0, 1.0) < w.client_fraction;
}

const FaultWindow* FaultInjector::active(ServerId s, ClientId c,
                                         double t) const {
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const FaultWindow& w = windows_[i];
    if (w.server != s) continue;
    if (t < w.start || t >= w.end) continue;
    if (w.flap_period_s > 0.0) {
      const double phase = std::fmod(t - w.start, w.flap_period_s);
      if (phase >= w.flap_duty * w.flap_period_s) continue;
    }
    if (!affects(w, i, c)) continue;
    return &w;
  }
  return nullptr;
}

}  // namespace oak::net
