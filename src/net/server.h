// Simulated HTTP servers: the performance-relevant state of a remote host.
//
// This is the substitute for the paper's PlanetLab nodes and production
// third-party servers. Each server has:
//  * a region (drives base RTT to each client),
//  * base processing delay and bandwidth,
//  * a diurnal load curve in server-local time (Fig. 11: "as the default
//    providers became busy during the day, Oak was able to significantly
//    improve the total page load time"),
//  * transient congestion events — a deterministic schedule drawn from the
//    server's seed (the ephemeral outliers of Fig. 3: "52% of outliers
//    changing after a single day"),
//  * optional chronic degradation (the persistent outliers of Fig. 3 and the
//    "2 PlanetLab servers performing significantly worse" of §5.2),
//  * optional per-region blind spots ("network blind-spots by third party
//    providers", §1) — the path from one client region is persistently bad,
//  * an operator-injected response delay (the sensitivity knob of Fig. 9).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/geo.h"
#include "util/rng.h"

namespace oak::net {

using ServerId = std::uint32_t;
inline constexpr ServerId kInvalidServer = ~0u;

// One transient congestion window.
struct CongestionEvent {
  double start = 0.0;     // seconds
  double end = 0.0;       // seconds
  double severity = 1.0;  // added load units while active
};

struct ServerConfig {
  std::string name;  // diagnostic label
  Region region = Region::kNorthAmerica;
  // Anycast-style global points of presence: clients reach a nearby replica
  // regardless of the home region (large CDNs, font/social providers).
  // Blind-spot regions still apply — a blind spot models a missing or sick
  // PoP for clients of that region.
  bool global_pops = false;
  double base_processing_s = 0.020;  // request handling at zero load
  double bandwidth_bps = 100e6;      // per-connection service rate
  double diurnal_amplitude = 0.5;    // peak added load units at local midday
  // Chronic degradation multiplies processing time and divides bandwidth.
  double chronic_degradation = 1.0;  // 1.0 = healthy; e.g. 8.0 = very sick
  // Client regions with a persistently bad path to this server.
  std::set<Region> blind_spot_regions;
  double blind_spot_penalty = 4.0;  // RTT & processing multiplier in a spot
  // Transient congestion weather parameters (schedule derived from seed).
  double congestion_rate_per_day = 0.0;  // expected events per day
  double congestion_mean_duration_s = 4 * 3600.0;
  double congestion_mean_severity = 3.0;
};

class Server {
 public:
  Server(ServerId id, IpAddr addr, ServerConfig cfg, std::uint64_t seed,
         double horizon_s);

  ServerId id() const { return id_; }
  IpAddr addr() const { return addr_; }
  const ServerConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }
  Region region() const { return cfg_.region; }

  // Load (in "units of extra work") at simulated time t: diurnal + transient.
  double load(double t) const;

  // Effective processing delay for one request at time t from a client in
  // `client_region`, including chronic degradation, blind spots and the
  // injected delay.
  double processing_delay(double t, Region client_region) const;

  // Effective per-connection bandwidth at time t (bytes/sec would be /8).
  double effective_bandwidth_bps(double t) const;

  // Multiplier applied to the path RTT for clients in `client_region`.
  double rtt_multiplier(Region client_region) const;

  // Fig. 9 knob: fixed delay added before every response.
  void set_injected_delay(double seconds) { injected_delay_s_ = seconds; }
  double injected_delay() const { return injected_delay_s_; }

  void set_chronic_degradation(double factor) {
    cfg_.chronic_degradation = factor;
  }

  const std::vector<CongestionEvent>& congestion_schedule() const {
    return events_;
  }

  // True when a transient event is active at t.
  bool congested(double t) const;

 private:
  ServerId id_;
  IpAddr addr_;
  ServerConfig cfg_;
  double injected_delay_s_ = 0.0;
  std::vector<CongestionEvent> events_;  // sorted by start
};

// Local hour-of-day [0,24) for a region at simulated time t (UTC).
double local_hour(Region r, double t);

// Diurnal load shape: 0 at night, peaking at local ~14:00.
double diurnal_shape(double local_hour);

}  // namespace oak::net
