#include "net/dns.h"

namespace oak::net {

void Dns::bind(const std::string& host, IpAddr addr) {
  forward_[host] = addr;
}

void Dns::unbind(const std::string& host) { forward_.erase(host); }

std::optional<IpAddr> Dns::resolve(const std::string& host) const {
  auto it = forward_.find(host);
  if (it == forward_.end()) return {};
  return it->second;
}

std::vector<std::string> Dns::reverse(IpAddr addr) const {
  std::vector<std::string> out;
  for (const auto& [host, ip] : forward_) {
    if (ip == addr) out.push_back(host);
  }
  return out;
}

bool Dns::has(const std::string& host) const {
  return forward_.count(host) > 0;
}

std::vector<std::string> Dns::all_hosts() const {
  std::vector<std::string> out;
  out.reserve(forward_.size());
  for (const auto& [host, ip] : forward_) out.push_back(host);
  return out;
}

}  // namespace oak::net
