#include "net/geo.h"

namespace oak::net {

std::string to_string(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return "NorthAmerica";
    case Region::kEurope: return "Europe";
    case Region::kAsia: return "Asia";
    case Region::kOceania: return "Oceania";
    case Region::kSouthAmerica: return "SouthAmerica";
  }
  return "Unknown";
}

std::string region_code(Region r) {
  switch (r) {
    case Region::kNorthAmerica: return "NA";
    case Region::kEurope: return "EU";
    case Region::kAsia: return "AS";
    case Region::kOceania: return "OC";
    case Region::kSouthAmerica: return "SA";
  }
  return "??";
}

double base_rtt(Region a, Region b) {
  // Seconds. Indexed [NA][EU][AS][OC][SA].
  static constexpr double kRtt[kNumRegions][kNumRegions] = {
      //  NA     EU     AS     OC     SA
      {0.045, 0.100, 0.170, 0.160, 0.130},  // NA
      {0.100, 0.030, 0.230, 0.280, 0.200},  // EU
      {0.170, 0.230, 0.055, 0.120, 0.310},  // AS
      {0.160, 0.280, 0.120, 0.030, 0.290},  // OC
      {0.130, 0.200, 0.310, 0.290, 0.040},  // SA
  };
  return kRtt[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

std::array<Region, kNumRegions> all_regions() {
  return {Region::kNorthAmerica, Region::kEurope, Region::kAsia,
          Region::kOceania, Region::kSouthAmerica};
}

}  // namespace oak::net
