#include "util/cdf.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"

namespace oak::util {

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_at_or_above(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

std::vector<Cdf::Point> Cdf::points(std::size_t max_points) const {
  std::vector<Point> out;
  if (samples_.empty() || max_points == 0) return out;
  ensure_sorted();
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.push_back({samples_[i], static_cast<double>(i + 1) /
                                    static_cast<double>(n)});
  }
  if (out.back().value != samples_.back() || out.back().fraction != 1.0) {
    out.push_back({samples_.back(), 1.0});
  }
  return out;
}

std::string Cdf::to_table(const std::string& label,
                          std::size_t max_points) const {
  std::string out = "# CDF: " + label + " (n=" + std::to_string(size()) +
                    ")\n# value\tfraction\n";
  for (const auto& p : points(max_points)) {
    out += format("%.6g\t%.4f\n", p.value, p.fraction);
  }
  return out;
}

}  // namespace oak::util
