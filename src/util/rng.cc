#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace oak::util {

namespace {
// SplitMix64 step, used to decorrelate forked seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng Rng::fork(std::uint64_t tag) const { return forked(seed_, tag); }

Rng Rng::forked(std::uint64_t seed, std::uint64_t tag) {
  return Rng(mix(seed ^ mix(tag)));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::normal(double mean, double sigma) {
  if (sigma <= 0.0) return mean;  // std distributions require sigma > 0
  std::normal_distribution<double> d(mean, sigma);
  return d(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  if (sigma <= 0.0) return median;
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::pareto(double lo, double hi, double alpha) {
  // Inverse-CDF sampling of a bounded Pareto.
  const double u = uniform(0.0, 1.0);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // Rejection-free sampling via precomputed harmonic normalization would be
  // cached in a hot loop; corpus generation is one-shot so direct inverse
  // transform over the CDF is fine for the n (<= a few thousand) we use.
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = uniform(0.0, 1.0) * norm;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::size_t Rng::weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  double u = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (u <= acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::uint64_t stable_hash(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace oak::util
