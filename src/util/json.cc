#include "util/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace oak::util {

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) throw JsonError("json: not a number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("json: not a string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) throw JsonError("json: not an array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) throw JsonError("json: not an object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) throw JsonError("json: not an array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) throw JsonError("json: not an object");
  return std::get<JsonObject>(value_);
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<JsonObject>(value_);
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void write_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; reports never produce them.
    return;
  }
  // Integral values print without a fractional part for compactness.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  out += buf;
}

void dump_impl(const Json& j, std::string& out, int indent, int depth);

void write_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_impl(const Json& j, std::string& out, int indent, int depth) {
  if (j.is_null()) {
    out += "null";
  } else if (j.is_bool()) {
    out += j.as_bool() ? "true" : "false";
  } else if (j.is_number()) {
    write_number(out, j.as_number());
  } else if (j.is_string()) {
    out += '"';
    out += json_escape(j.as_string());
    out += '"';
  } else if (j.is_array()) {
    const auto& a = j.as_array();
    out += '[';
    bool first = true;
    for (const auto& e : a) {
      if (!first) out += ',';
      first = false;
      write_indent(out, indent, depth + 1);
      dump_impl(e, out, indent, depth + 1);
    }
    if (!a.empty()) write_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& o = j.as_object();
    out += '{';
    bool first = true;
    for (const auto& [k, v] : o) {
      if (!first) out += ',';
      first = false;
      write_indent(out, indent, depth + 1);
      out += '"';
      out += json_escape(k);
      out += "\":";
      if (indent > 0) out += ' ';
      dump_impl(v, out, indent, depth + 1);
    }
    if (!o.empty()) write_indent(out, indent, depth);
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw JsonError("json parse error at offset " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return number();
    }
  }

  void enter() {
    if (++depth_ > kMaxJsonDepth) fail("nesting too deep");
  }

  Json object() {
    expect('{');
    enter();
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      o[std::move(key)] = value();
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return Json(std::move(o));
      }
      fail("expected ',' or '}'");
    }
  }

  Json array() {
    expect('[');
    enter();
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return Json(std::move(a));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are not needed by
            // our report format, which is ASCII, but handle them anyway).
            if (code >= 0xD800 && code <= 0xDBFF && pos_ + 6 <= text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              for (int i = 0; i < 4; ++i) {
                char h = text_[pos_++];
                lo <<= 4;
                if (h >= '0' && h <= '9') lo |= unsigned(h - '0');
                else if (h >= 'a' && h <= 'f') lo |= unsigned(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F') lo |= unsigned(h - 'A' + 10);
                else fail("bad hex digit in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xF0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    double d = 0.0;
    auto res = std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (res.ec == std::errc::result_out_of_range) fail("non-finite number");
    if (res.ec != std::errc{}) fail("bad number");
    if (!std::isfinite(d)) fail("non-finite number");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_impl(*this, out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::dump_pretty(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace oak::util
