// Interning string arena for report ingestion.
//
// A performance report names the same handful of IPs, hostnames and URL
// prefixes over and over (every object served by one CDN front-end repeats
// its IP; every object of one provider repeats its domain). The streaming
// decoder (browser/report_decoder.h) parks every string that survives
// ingestion in one of these arenas: each distinct string is stored once in
// a chunked buffer and handed out as a std::string_view.
//
// Lifetime rules (DESIGN.md §7): views returned by store()/intern() stay
// valid until clear() or destruction — the arena never reallocates stored
// bytes. A ReportView decoded into an arena is therefore valid exactly as
// long as (a) the wire buffer and (b) the arena are; OakServer keeps both
// alive for the duration of one process_report call and then drops them.
// Nothing that outlives ingestion (UserProfile fields, Violations, decision
// log rows) may hold arena views — survivors are copied into owned strings
// at the point they are retained.
//
// Not thread-safe; each ingesting thread (shard) uses its own arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace oak::util {

class StringArena {
 public:
  explicit StringArena(std::size_t block_bytes = kDefaultBlockBytes);

  // Copy `s` into the arena (no dedup). The returned view is stable until
  // clear()/destruction.
  std::string_view store(std::string_view s);

  // Copy `s` into the arena unless an identical string was interned before,
  // in which case the existing view is returned. Equal interned strings
  // therefore share identical .data() pointers, which downstream grouping
  // exploits for O(1) identity checks.
  std::string_view intern(std::string_view s);

  // Drop all stored strings and the intern table; keeps every allocated
  // block (rewound to empty) and the intern table's capacity, so an arena
  // recycled per report settles into zero steady-state allocation even when
  // a report spans several blocks. Memory stays pinned at the high-water
  // mark of the largest report seen; call release() to give it back.
  void clear();

  // clear(), then drop every block and shrink the intern table — the
  // cold-start footprint. For long-idle shards or tests.
  void release();

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t unique_strings() const { return interned_count_; }
  std::uint64_t intern_hits() const { return intern_hits_; }
  // Retention telemetry: total block capacity held (the recycled high-water
  // mark) and the number of blocks holding it.
  std::size_t capacity_bytes() const;
  std::size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  char* allocate(std::size_t n);
  void grow_table();

  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  // Index of the block the next allocation tries first. Blocks before it
  // are full (or skipped by an oversized request); blocks after it are
  // empty, retained by clear() for reuse.
  std::size_t active_ = 0;
  // Intern table: open-addressing, linear probing, power-of-two size, empty
  // slots hold default (null-data) views. Per-report ingestion clears the
  // arena constantly, and a node-based set pays one heap node per insert
  // plus a free per node on clear(); a flat table of views costs nothing to
  // insert into and clears with a fill.
  std::vector<std::string_view> interned_;
  std::size_t interned_count_ = 0;
  std::size_t bytes_used_ = 0;
  std::uint64_t intern_hits_ = 0;
};

}  // namespace oak::util
