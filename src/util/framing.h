// Checksummed, length-prefixed record framing for the durability journal.
//
// A journal is a flat byte stream of frames:
//
//   frame := [uvarint payload_len] [fixed32 crc32(payload)] [payload bytes]
//
// The format is designed so a torn tail — a frame whose bytes were only
// partially written before a crash — is *detected*, never misparsed:
// a frame is accepted only when the whole header fits, the whole payload
// fits, and the CRC matches. Anything else stops the scan at the last good
// frame boundary (read_frame distinguishes "ran off the end" from "bytes
// present but wrong" so callers can tell torn tails from corruption).
//
// Integers are LEB128 varints (canonical-length not required on read) and
// little-endian fixed-width words; doubles travel as their IEEE-754 bit
// pattern via fixed64, so replayed timestamps are bit-exact — the recovery
// contract ("byte-identical export_state") does not survive a lossy
// decimal round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace oak::util {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
// `seed` chains multi-buffer checksums: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

// --- LEB128 unsigned varints (1–10 bytes for a uint64).
void put_uvarint(std::string& out, std::uint64_t v);
// Reads at `pos`, advancing it on success. False when the buffer ends
// mid-varint or the encoding exceeds 10 bytes (corrupt).
bool get_uvarint(std::string_view in, std::size_t& pos, std::uint64_t& out);

// --- Little-endian fixed-width words.
void put_fixed32(std::string& out, std::uint32_t v);
bool get_fixed32(std::string_view in, std::size_t& pos, std::uint32_t& out);
void put_fixed64(std::string& out, std::uint64_t v);
bool get_fixed64(std::string_view in, std::size_t& pos, std::uint64_t& out);

// Doubles as IEEE-754 bit patterns (bit-exact round trip, NaNs included).
void put_double_bits(std::string& out, double v);
bool get_double_bits(std::string_view in, std::size_t& pos, double& out);

// --- Length-prefixed byte strings: [uvarint len][bytes].
void put_lv(std::string& out, std::string_view bytes);
bool get_lv(std::string_view in, std::size_t& pos, std::string_view& out);

// Frames longer than this are rejected as corrupt rather than truncated: no
// legitimate record approaches it, and treating a garbage length as "wait
// for more bytes" would make a flipped length byte look like a torn tail
// the size of the address space.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;  // 1 GiB

void append_frame(std::string& out, std::string_view payload);

enum class FrameStatus {
  kOk,         // payload extracted, pos advanced past the frame
  kTruncated,  // buffer ends before the frame completes (torn tail)
  kCorrupt,    // CRC mismatch, malformed varint, or absurd length
};

// Scans one frame at `pos`. On kOk, `payload` views into `buf` and `pos`
// lands on the next frame. On kTruncated/kCorrupt, `pos` is unchanged —
// it marks the last clean frame boundary.
FrameStatus read_frame(std::string_view buf, std::size_t& pos,
                       std::string_view& payload);

}  // namespace oak::util
