#include "util/arena.h"

#include <algorithm>
#include <cstring>

namespace oak::util {

namespace {

constexpr std::size_t kInitialTableSlots = 64;  // power of two

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

StringArena::StringArena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

char* StringArena::allocate(std::size_t n) {
  // Advance the cursor past blocks that cannot take n more bytes. Blocks
  // retained by clear() are empty, so this only skips when n exceeds a
  // whole block's capacity (an oversized string); the skipped blocks come
  // back into play at the next clear().
  while (active_ < blocks_.size() &&
         blocks_[active_].used + n > blocks_[active_].capacity) {
    ++active_;
  }
  if (active_ == blocks_.size()) {
    Block b;
    b.capacity = n > block_bytes_ ? n : block_bytes_;
    b.data = std::make_unique<char[]>(b.capacity);
    blocks_.push_back(std::move(b));
  }
  Block& b = blocks_[active_];
  char* out = b.data.get() + b.used;
  b.used += n;
  bytes_used_ += n;
  return out;
}

std::string_view StringArena::store(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = allocate(s.size());
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void StringArena::grow_table() {
  std::vector<std::string_view> old = std::move(interned_);
  interned_.assign(old.empty() ? kInitialTableSlots : old.size() * 2,
                   std::string_view());
  const std::size_t mask = interned_.size() - 1;
  for (std::string_view v : old) {
    if (v.data() == nullptr) continue;
    std::size_t i = fnv1a(v) & mask;
    while (interned_[i].data() != nullptr) i = (i + 1) & mask;
    interned_[i] = v;
  }
}

std::string_view StringArena::intern(std::string_view s) {
  // Load factor under 1/2: the +1 accounts for the slot we may take.
  if ((interned_count_ + 1) * 2 > interned_.size()) grow_table();
  const std::size_t mask = interned_.size() - 1;
  std::size_t i = fnv1a(s) & mask;
  while (interned_[i].data() != nullptr) {
    if (interned_[i] == s) {
      ++intern_hits_;
      return interned_[i];
    }
    i = (i + 1) & mask;
  }
  std::string_view stored = store(s);
  // Empty strings store() as null views, which would read as a vacant slot;
  // give them a stable non-null data pointer inside the arena instead.
  if (stored.data() == nullptr) stored = std::string_view(allocate(1), 0);
  interned_[i] = stored;
  ++interned_count_;
  return stored;
}

void StringArena::clear() {
  if (interned_count_ > 0) {
    std::fill(interned_.begin(), interned_.end(), std::string_view());
  }
  interned_count_ = 0;
  bytes_used_ = 0;
  intern_hits_ = 0;
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
}

void StringArena::release() {
  clear();
  blocks_.clear();
  interned_.clear();
  interned_.shrink_to_fit();
}

std::size_t StringArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

}  // namespace oak::util
