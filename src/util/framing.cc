#include "util/framing.h"

#include <array>
#include <cstring>

namespace oak::util {

namespace {

// Slicing-by-8 tables, generated at first use. tables[0] is the classic
// reflected-polynomial table; tables[k][b] is the CRC of byte b followed by
// k zero bytes. The byte-at-a-time loop is capped by its load-to-use
// dependency chain (~1 byte per ~5 cycles); slicing-by-8 does eight
// independent lookups per iteration, which matters because the journal
// checksums every report body on the ingest hot path.
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  const auto& t = crc_tables();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  while (n >= 8) {
    // Explicit little-endian composition (a single load after optimization
    // on the platforms we build for, correct everywhere).
    const std::uint32_t lo = std::uint32_t(p[0]) | std::uint32_t(p[1]) << 8 |
                             std::uint32_t(p[2]) << 16 |
                             std::uint32_t(p[3]) << 24;
    const std::uint32_t hi = std::uint32_t(p[4]) | std::uint32_t(p[5]) << 8 |
                             std::uint32_t(p[6]) << 16 |
                             std::uint32_t(p[7]) << 24;
    c ^= lo;
    c = t[7][c & 0xFFu] ^ t[6][(c >> 8) & 0xFFu] ^ t[5][(c >> 16) & 0xFFu] ^
        t[4][c >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p) {
    c = t[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_uvarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_uvarint(std::string_view in, std::size_t& pos, std::uint64_t& out) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (pos + i >= in.size()) return false;
    const std::uint8_t b = static_cast<std::uint8_t>(in[pos + i]);
    v |= std::uint64_t(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) {
      pos += i + 1;
      out = v;
      return true;
    }
  }
  return false;  // > 10 continuation bytes: not a valid uint64 varint
}

void put_fixed32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

bool get_fixed32(std::string_view in, std::size_t& pos, std::uint32_t& out) {
  if (pos + 4 > in.size()) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  }
  pos += 4;
  out = v;
  return true;
}

void put_fixed64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

bool get_fixed64(std::string_view in, std::size_t& pos, std::uint64_t& out) {
  if (pos + 8 > in.size()) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t(static_cast<std::uint8_t>(in[pos + i])) << (8 * i);
  }
  pos += 8;
  out = v;
  return true;
}

void put_double_bits(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_fixed64(out, bits);
}

bool get_double_bits(std::string_view in, std::size_t& pos, double& out) {
  std::uint64_t bits = 0;
  if (!get_fixed64(in, pos, bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

void put_lv(std::string& out, std::string_view bytes) {
  put_uvarint(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

bool get_lv(std::string_view in, std::size_t& pos, std::string_view& out) {
  std::size_t p = pos;
  std::uint64_t len = 0;
  if (!get_uvarint(in, p, len)) return false;
  if (len > in.size() - p) return false;
  out = in.substr(p, static_cast<std::size_t>(len));
  pos = p + static_cast<std::size_t>(len);
  return true;
}

void append_frame(std::string& out, std::string_view payload) {
  put_uvarint(out, payload.size());
  put_fixed32(out, crc32(payload));
  out.append(payload.data(), payload.size());
}

FrameStatus read_frame(std::string_view buf, std::size_t& pos,
                       std::string_view& payload) {
  std::size_t p = pos;
  std::uint64_t len = 0;
  // A varint that fails with 10+ bytes available can never complete no
  // matter how many more arrive — corrupt. With fewer, the buffer ended
  // mid-varint (every byte so far was a continuation byte, else the decode
  // would have succeeded) — a torn tail.
  if (!get_uvarint(buf, p, len)) {
    return buf.size() - pos >= 10 ? FrameStatus::kCorrupt
                                  : FrameStatus::kTruncated;
  }
  if (len > kMaxFramePayload) return FrameStatus::kCorrupt;
  std::uint32_t crc = 0;
  if (!get_fixed32(buf, p, crc)) return FrameStatus::kTruncated;
  if (len > buf.size() - p) return FrameStatus::kTruncated;
  const std::string_view body = buf.substr(p, static_cast<std::size_t>(len));
  if (crc32(body) != crc) return FrameStatus::kCorrupt;
  payload = body;
  pos = p + static_cast<std::size_t>(len);
  return FrameStatus::kOk;
}

}  // namespace oak::util
