// Minimal JSON value, writer and parser.
//
// Oak's client→server performance reports are "HAR-like" (paper §5,
// Implementation): a small JSON document per page load. We need byte-accurate
// serialization (Fig. 15 measures report sizes) and a parser for the server
// side, so we implement a small self-contained JSON library rather than
// depending on anything external.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace oak::util {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic, which keeps serialized report
// bytes (and therefore Fig. 15) reproducible across runs and platforms.
using JsonObject = std::map<std::string, Json>;

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Maximum container nesting accepted by both JSON decoders (the DOM parser
// below and the streaming scanner in util/json_stream.h). Adversarial
// reports like "[[[[..." otherwise recurse or grow the container stack
// without bound; real Oak reports nest 3 deep. Both decoders enforce the
// same limit so they agree on what is malformed.
inline constexpr std::size_t kMaxJsonDepth = 96;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Checked accessors: throw JsonError on type mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  // Object member lookup; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  // Optional lookup: nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  // Mutable object access (creates members; converts null to object).
  Json& operator[](const std::string& key);

  // Compact serialization (no whitespace) — the wire format of reports.
  std::string dump() const;
  // Pretty serialization for logs and golden files.
  std::string dump_pretty(int indent = 2) const;

  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

// Escape a string per JSON rules (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace oak::util
