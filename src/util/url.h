// URL parsing and domain classification.
//
// Oak's grouping and matching logic works on hostnames: grouping report
// entries by resolved server, deciding whether an object is "external"
// (Fig. 1 counts non-origin hostnames, where sub-domains of the origin are
// NOT external), and scanning rule text for domain mentions.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace oak::util {

struct Url {
  std::string scheme;  // "http" / "https"
  std::string host;    // lowercase hostname
  int port = 0;        // 0 = unspecified (also ":0" and ":", normalized away)
  std::string path;    // always starts with '/' (default "/")
  std::string query;   // without '?', may be empty

  std::string to_string() const;
};

// Parse an absolute URL of the form
//   scheme://[userinfo@]host[:port][/path][?query]
// Returns nullopt for anything else. Userinfo is stripped (the simulated
// web has no credentials; the last '@' delimits it, as in WHATWG parsing);
// an authority that is empty after stripping — "http://", "http:///x",
// "http://:8080/" — is rejected, as is a non-numeric or > 65535 port.
std::optional<Url> parse_url(std::string_view raw);

// Registrable domain, approximated as the last two labels ("a.b.c.com" ->
// "c.com"). Good enough for the synthetic host universe, which never uses
// multi-label public suffixes.
std::string registrable_domain(std::string_view host);

// True when `host` equals `origin` or is a sub-domain of `origin`'s
// registrable domain. Fig. 1 explicitly treats sub-domains as non-external.
bool same_site(std::string_view host, std::string_view origin);

// Extract every hostname-looking token from free text (used for tier-2 rule
// matching against inline scripts that build URLs programmatically).
std::vector<std::string> extract_hostnames(std::string_view text);

// Rewrite the host of an absolute URL; returns nullopt if `url` is not
// parseable. "http://a.com/x?q" + "b.net" -> "http://b.net/x?q".
std::optional<std::string> replace_host(std::string_view url,
                                        std::string_view new_host);

}  // namespace oak::util
