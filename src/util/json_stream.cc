#include "util/json_stream.h"

#include <charconv>
#include <cmath>
#include <cstring>

namespace oak::util {

void JsonScanner::fail(const std::string& why) const {
  throw JsonError("json parse error at offset " + std::to_string(pos_) +
                  ": " + why);
}

void JsonScanner::skip_ws() {
  while (pos_ < text_.size() &&
         (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
          text_[pos_] == '\r')) {
    ++pos_;
  }
}

char JsonScanner::peek() {
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void JsonScanner::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonScanner::consume_literal(const char* lit) {
  std::size_t n = std::char_traits<char>::length(lit);
  if (text_.compare(pos_, n, lit) == 0) {
    pos_ += n;
    return true;
  }
  return false;
}

void JsonScanner::push(bool is_object) {
  if (depth_ >= kMaxJsonDepth) fail("nesting too deep");
  stack_[depth_++] = is_object;
  mode_ = is_object ? Mode::kObjFirstKey : Mode::kArrFirstValue;
}

JsonScanner::Mode JsonScanner::after_value() const {
  if (depth_ == 0) return Mode::kDone;
  return stack_[depth_ - 1] ? Mode::kObjCommaOrEnd : Mode::kArrCommaOrEnd;
}

JsonEvent JsonScanner::pop(char close) {
  expect(close);
  --depth_;
  mode_ = after_value();
  return close == '}' ? JsonEvent::kEndObject : JsonEvent::kEndArray;
}

JsonEvent JsonScanner::value_start() {
  skip_ws();
  char c = peek();
  switch (c) {
    case '{':
      ++pos_;
      push(/*is_object=*/true);
      return JsonEvent::kBeginObject;
    case '[':
      ++pos_;
      push(/*is_object=*/false);
      return JsonEvent::kBeginArray;
    case '"':
      mode_ = after_value();
      return scan_string(JsonEvent::kString);
    case 't':
      if (consume_literal("true")) {
        boolean_ = true;
        mode_ = after_value();
        return JsonEvent::kBool;
      }
      fail("bad literal");
    case 'f':
      if (consume_literal("false")) {
        boolean_ = false;
        mode_ = after_value();
        return JsonEvent::kBool;
      }
      fail("bad literal");
    case 'n':
      if (consume_literal("null")) {
        mode_ = after_value();
        return JsonEvent::kNull;
      }
      fail("bad literal");
    default:
      mode_ = after_value();
      return scan_number();
  }
}

unsigned JsonScanner::decode_hex4() {
  unsigned code = 0;
  for (int i = 0; i < 4; ++i) {
    char h = text_[pos_++];
    code <<= 4;
    if (h >= '0' && h <= '9') code |= unsigned(h - '0');
    else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
    else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
    else fail("bad hex digit in \\u escape");
  }
  return code;
}

JsonEvent JsonScanner::scan_string(JsonEvent ev) {
  expect('"');
  const std::size_t body = pos_;
  // Fast path: memchr to the closing quote; if no backslash intervenes the
  // token is a view into the input and nothing is copied. Strings are the
  // bulk of a report's bytes, so this is the scanner's hottest loop.
  const char* base = text_.data();
  const char* quote = static_cast<const char*>(
      std::memchr(base + body, '"', text_.size() - body));
  if (quote == nullptr) {
    pos_ = text_.size();
    fail("unterminated string");
  }
  const std::size_t qpos = static_cast<std::size_t>(quote - base);
  const void* backslash = std::memchr(base + body, '\\', qpos - body);
  if (backslash == nullptr) {
    token_ = text_.substr(body, qpos - body);
    escaped_ = false;
    pos_ = qpos + 1;
    return ev;
  }
  pos_ = static_cast<std::size_t>(static_cast<const char*>(backslash) - base);

  // Slow path: copy the clean prefix, then decode escapes exactly as the
  // DOM parser does (same escapes, same \u and surrogate-pair handling,
  // same failure points).
  scratch_.assign(text_.data() + body, pos_ - body);
  escaped_ = true;
  while (true) {
    if (pos_ >= text_.size()) fail("unterminated string");
    char c = text_[pos_++];
    if (c == '"') {
      token_ = scratch_;
      return ev;
    }
    if (c != '\\') {
      scratch_ += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    char e = text_[pos_++];
    switch (e) {
      case '"': scratch_ += '"'; break;
      case '\\': scratch_ += '\\'; break;
      case '/': scratch_ += '/'; break;
      case 'b': scratch_ += '\b'; break;
      case 'f': scratch_ += '\f'; break;
      case 'n': scratch_ += '\n'; break;
      case 'r': scratch_ += '\r'; break;
      case 't': scratch_ += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("bad \\u escape");
        unsigned code = decode_hex4();
        if (code >= 0xD800 && code <= 0xDBFF && pos_ + 6 <= text_.size() &&
            text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
          pos_ += 2;
          unsigned lo = decode_hex4();
          code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
        }
        if (code < 0x80) {
          scratch_ += static_cast<char>(code);
        } else if (code < 0x800) {
          scratch_ += static_cast<char>(0xC0 | (code >> 6));
          scratch_ += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          scratch_ += static_cast<char>(0xE0 | (code >> 12));
          scratch_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          scratch_ += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          scratch_ += static_cast<char>(0xF0 | (code >> 18));
          scratch_ += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          scratch_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          scratch_ += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default: fail("bad escape");
    }
  }
}

JsonEvent JsonScanner::scan_number() {
  const std::size_t start = pos_;
  if (peek() == '-') ++pos_;
  while (pos_ < text_.size()) {
    const char c = text_[pos_];
    if (!((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')) {
      break;
    }
    ++pos_;
  }
  if (pos_ == start) fail("expected value");
  double d = 0.0;
  auto res = std::from_chars(text_.data() + start, text_.data() + pos_, d);
  if (res.ec == std::errc::result_out_of_range) fail("non-finite number");
  if (res.ec != std::errc{}) fail("bad number");
  if (!std::isfinite(d)) fail("non-finite number");
  number_ = d;
  token_ = text_.substr(start, pos_ - start);
  return JsonEvent::kNumber;
}

JsonEvent JsonScanner::next() {
  switch (mode_) {
    case Mode::kTopValue:
      return value_start();
    case Mode::kObjFirstKey:
      skip_ws();
      if (peek() == '}') return pop('}');
      mode_ = Mode::kObjValue;
      return scan_string(JsonEvent::kKey);
    case Mode::kObjKey:
      skip_ws();
      mode_ = Mode::kObjValue;
      return scan_string(JsonEvent::kKey);
    case Mode::kObjValue:
      skip_ws();
      expect(':');
      return value_start();
    case Mode::kObjCommaOrEnd: {
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        skip_ws();
        mode_ = Mode::kObjValue;
        return scan_string(JsonEvent::kKey);
      }
      if (c == '}') return pop('}');
      fail("expected ',' or '}'");
    }
    case Mode::kArrFirstValue:
      skip_ws();
      if (peek() == ']') return pop(']');
      return value_start();
    case Mode::kArrValue:
      return value_start();
    case Mode::kArrCommaOrEnd: {
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        mode_ = Mode::kArrValue;
        return value_start();
      }
      if (c == ']') return pop(']');
      fail("expected ',' or ']'");
    }
    case Mode::kDone:
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters");
      return JsonEvent::kEnd;
  }
  fail("scanner state corrupted");  // unreachable
}

void JsonScanner::skip_value() {
  const std::size_t base = depth_;
  JsonEvent e = next();
  if (e == JsonEvent::kBeginObject || e == JsonEvent::kBeginArray) {
    while (depth_ > base) next();
  }
}

void scan_json(std::string_view text, JsonSink& sink) {
  JsonScanner scanner(text);
  for (JsonEvent e = scanner.next(); e != JsonEvent::kEnd;
       e = scanner.next()) {
    switch (e) {
      case JsonEvent::kBeginObject: sink.on_begin_object(); break;
      case JsonEvent::kEndObject: sink.on_end_object(); break;
      case JsonEvent::kBeginArray: sink.on_begin_array(); break;
      case JsonEvent::kEndArray: sink.on_end_array(); break;
      case JsonEvent::kKey: sink.on_key(scanner.text()); break;
      case JsonEvent::kString: sink.on_string(scanner.text()); break;
      case JsonEvent::kNumber: sink.on_number(scanner.number()); break;
      case JsonEvent::kBool: sink.on_bool(scanner.boolean()); break;
      case JsonEvent::kNull: sink.on_null(); break;
      case JsonEvent::kEnd: break;
    }
  }
}

}  // namespace oak::util
