#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace oak::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](unsigned char c) { return std::tolower(c); };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(static_cast<unsigned char>(haystack[i + j])) !=
          lower(static_cast<unsigned char>(needle[j]))) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

std::size_t replace_all(std::string& s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
    ++count;
  }
  return count;
}

std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle) {
  if (needle.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(ap2);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace oak::util
