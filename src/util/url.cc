#include "util/url.h"

#include <cctype>
#include <set>

#include "util/strings.h"

namespace oak::util {

std::string Url::to_string() const {
  std::string out = scheme + "://" + host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

std::optional<Url> parse_url(std::string_view raw) {
  Url u;
  std::size_t scheme_end = raw.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return {};
  u.scheme = to_lower(raw.substr(0, scheme_end));
  std::string_view rest = raw.substr(scheme_end + 3);
  if (rest.empty()) return {};
  std::size_t path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  // Userinfo is stripped, not kept: the last '@' delimits it (WHATWG), so
  // "u:pw@h.com" and even "a@b@h.com" leave "h.com".
  std::size_t at = authority.rfind('@');
  if (at != std::string_view::npos) authority = authority.substr(at + 1);
  std::size_t colon = authority.find(':');
  if (colon != std::string_view::npos) {
    std::string_view port_str = authority.substr(colon + 1);
    authority = authority.substr(0, colon);
    long val = 0;
    for (char c : port_str) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return {};
      val = val * 10 + (c - '0');
      if (val > 65535) return {};
    }
    u.port = static_cast<int>(val);
  }
  // An authority that is empty once userinfo and port are gone ("http://",
  // "http:///x", "http://:8080/", "http://u@/") names no server.
  if (authority.empty()) return {};
  for (char c : authority) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-')) {
      return {};
    }
  }
  u.host = to_lower(authority);
  std::string_view tail =
      path_start == std::string_view::npos ? "" : rest.substr(path_start);
  std::size_t q = tail.find('?');
  if (q == std::string_view::npos) {
    u.path = tail.empty() ? "/" : std::string(tail);
  } else {
    u.path = q == 0 ? "/" : std::string(tail.substr(0, q));
    u.query = std::string(tail.substr(q + 1));
  }
  return u;
}

std::string registrable_domain(std::string_view host) {
  auto labels = split_nonempty(host, '.');
  if (labels.size() <= 2) return std::string(host);
  return labels[labels.size() - 2] + "." + labels[labels.size() - 1];
}

bool same_site(std::string_view host, std::string_view origin) {
  if (host == origin) return true;
  return registrable_domain(host) == registrable_domain(origin);
}

std::vector<std::string> extract_hostnames(std::string_view text) {
  // A hostname token: [a-z0-9-]+ ('.' [a-z0-9-]+)+ with at least one dot and
  // an alphabetic top-level label. We scan manually instead of std::regex —
  // this is on the matcher hot path (every rule × every report).
  std::vector<std::string> out;
  const auto is_label_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-';
  };
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (!is_label_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t start = i;
    std::size_t dots = 0;
    while (i < n && (is_label_char(text[i]) || text[i] == '.')) {
      if (text[i] == '.') ++dots;
      ++i;
    }
    std::string_view token = text.substr(start, i - start);
    // Trim trailing dots (sentence punctuation).
    while (!token.empty() && token.back() == '.') {
      token.remove_suffix(1);
      --dots;
    }
    if (dots == 0 || token.empty()) continue;
    // The last label must be a plausible TLD; this rejects version numbers
    // ("1.2.3") and file names ("loader.js", "style.css").
    std::size_t last_dot = token.rfind('.');
    std::string tld = to_lower(token.substr(last_dot + 1));
    static const std::set<std::string> kTlds = {
        "com", "net",  "org", "io", "ru",   "me", "tv", "cc", "co",
        "edu", "gov",  "uk",  "de", "fr",   "cn", "jp", "br", "in",
        "us",  "info", "biz", "eu", "site", "app"};
    if (!kTlds.count(tld)) continue;
    out.push_back(to_lower(token));
  }
  return out;
}

std::optional<std::string> replace_host(std::string_view url,
                                        std::string_view new_host) {
  auto parsed = parse_url(url);
  if (!parsed) return {};
  parsed->host = to_lower(new_host);
  return parsed->to_string();
}

}  // namespace oak::util
