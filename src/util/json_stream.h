// Streaming (SAX-style) JSON scanner — the zero-copy half of report
// ingestion.
//
// util::Json::parse materializes a DOM: a std::map node per object member, a
// heap std::string per key, a Json variant per value. For Oak's report
// ingestion (one HAR-like document per page load, dozens-to-hundreds of
// entries) that DOM is allocated, copied into browser::PerfReport, and
// thrown away — per-report allocation, not locking, is the ingest ceiling
// after the sharded serving plane (DESIGN.md §6/§7).
//
// JsonScanner walks the raw byte buffer and emits events over
// std::string_view tokens. Strings without escapes are views straight into
// the input; escaped strings are decoded once into an internal scratch
// buffer (valid until the next event). Nothing else allocates.
//
// The scanner is lexically bit-compatible with the DOM parser: identical
// number scanning (including the liberal token scan + std::from_chars
// prefix parse), identical escape and surrogate handling, and the same
// hardening limits (util::kMaxJsonDepth, non-finite rejection) — so the two
// decoders accept and reject exactly the same byte strings. The DOM path is
// kept as a differential-testing oracle for this contract
// (tests/report_decoder_test.cc, OakConfig::ingest_decode).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/json.h"

namespace oak::util {

enum class JsonEvent {
  kBeginObject,
  kEndObject,
  kBeginArray,
  kEndArray,
  kKey,     // object member name; payload in text()
  kString,  // payload in text()
  kNumber,  // payload in number()
  kBool,    // payload in boolean()
  kNull,
  kEnd,  // whole document consumed (trailing bytes already rejected)
};

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  // Advance to the next event. Throws JsonError on malformed input, exactly
  // where Json::parse would. After kEnd, further calls keep returning kEnd.
  JsonEvent next();

  // Payload of the last kKey/kString event: decoded bytes. A view into the
  // input buffer when the string had no escapes, otherwise into an internal
  // scratch buffer that is overwritten by the next string-bearing event.
  std::string_view text() const { return token_; }
  // True when the last kKey/kString payload was escape-decoded into the
  // scratch buffer (i.e. text() does NOT point into the input and will be
  // invalidated by the next string-bearing event).
  bool string_escaped() const { return escaped_; }
  // Payload of the last kNumber event.
  double number() const { return number_; }
  // Payload of the last kBool event.
  bool boolean() const { return boolean_; }

  // Consume one whole value (scalar or full container subtree) from a
  // position where a value is expected, validating it like any other input.
  // Used to skip unknown report fields without materializing them.
  void skip_value();

  // Current byte offset (diagnostics).
  std::size_t offset() const { return pos_; }
  // Current container nesting depth (0 at top level).
  std::size_t depth() const { return depth_; }

 private:
  enum class Mode : unsigned char {
    kTopValue,      // expecting the single top-level value
    kObjFirstKey,   // just after '{' — key or '}'
    kObjKey,        // after ',' in an object — key required
    kObjValue,      // after a key — ':' then value
    kObjCommaOrEnd, // after a value in an object
    kArrFirstValue, // just after '[' — value or ']'
    kArrValue,      // after ',' in an array — value required
    kArrCommaOrEnd, // after a value in an array
    kDone,
  };

  [[noreturn]] void fail(const std::string& why) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_literal(const char* lit);

  JsonEvent value_start();   // dispatch on the first byte of a value
  JsonEvent scan_string(JsonEvent ev);  // kKey or kString
  JsonEvent scan_number();
  void push(bool is_object);
  JsonEvent pop(char close);
  // Mode after a completed value, given the (already updated) stack top.
  Mode after_value() const;
  unsigned decode_hex4();

  std::string_view text_;
  std::size_t pos_ = 0;
  Mode mode_ = Mode::kTopValue;
  // Container stack; true = object. Depth is bounded by kMaxJsonDepth, so a
  // fixed array keeps the scanner allocation-free.
  bool stack_[kMaxJsonDepth];
  std::size_t depth_ = 0;

  std::string_view token_;
  double number_ = 0.0;
  bool boolean_ = false;
  bool escaped_ = false;
  std::string scratch_;  // decoded escaped strings live here
};

// Minimal callback interface over the scanner, for consumers that prefer
// push-style events to the pull API.
class JsonSink {
 public:
  virtual ~JsonSink() = default;
  virtual void on_begin_object() {}
  virtual void on_end_object() {}
  virtual void on_begin_array() {}
  virtual void on_end_array() {}
  virtual void on_key(std::string_view) {}
  virtual void on_string(std::string_view) {}
  virtual void on_number(double) {}
  virtual void on_bool(bool) {}
  virtual void on_null() {}
};

// Drive `sink` over one complete JSON document. Throws JsonError exactly
// where Json::parse would.
void scan_json(std::string_view text, JsonSink& sink);

}  // namespace oak::util
