// Flat containers for the ingest hot path.
//
// Report ingestion consults a handful of small per-user tables (active
// rules, pending violation counts) and two large memo tables (the match
// cache, the per-rule digest index) on every report. Node-based std::map /
// std::unordered_map pay a heap allocation per insert, a pointer chase per
// lookup, and a free per node on clear — all of which show up at the top of
// the ingest profile once decode is zero-copy. Two shapes cover every use:
//
//  * SmallFlatMap / SmallFlatSet — a sorted std::vector. Lookup is binary
//    search, iteration is in key order (bit-compatible with the std::map /
//    std::set serialization the snapshot format pins), and the whole table
//    lives in one allocation. Right for per-user state: a profile holds a
//    handful of active rules, not thousands.
//
//  * FlatHashMap — open addressing, linear probing, power-of-two capacity,
//    load factor <= 1/2. Per-entry erase uses backward-shift deletion (the
//    tiered user store removes one uid per demotion), so probe chains stay
//    tombstone-free. clear() keeps capacity, so steady-state use allocates
//    nothing. Right for memo tables and the uid -> hot-slot index.
//
// None of these are thread-safe; every owner is shard-local by design.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace oak::util {

template <typename K, typename V, typename Compare = std::less<K>>
class SmallFlatMap {
 public:
  using value_type = std::pair<K, V>;
  using storage = std::vector<value_type>;
  using iterator = typename storage::iterator;
  using const_iterator = typename storage::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  iterator find(const K& key) {
    iterator it = lower_bound(key);
    return it != v_.end() && !Compare{}(key, it->first) ? it : v_.end();
  }
  const_iterator find(const K& key) const {
    const_iterator it = lower_bound(key);
    return it != v_.end() && !Compare{}(key, it->first) ? it : v_.end();
  }
  std::size_t count(const K& key) const {
    return find(key) == v_.end() ? 0 : 1;
  }
  const V* at_ptr(const K& key) const {
    const_iterator it = find(key);
    return it == v_.end() ? nullptr : &it->second;
  }

  // std::map::at parity (tests and audit paths index known-present keys).
  V& at(const K& key) {
    iterator it = find(key);
    if (it == v_.end()) throw std::out_of_range("SmallFlatMap::at");
    return it->second;
  }
  const V& at(const K& key) const {
    const_iterator it = find(key);
    if (it == v_.end()) throw std::out_of_range("SmallFlatMap::at");
    return it->second;
  }

  V& operator[](const K& key) {
    iterator it = lower_bound(key);
    if (it == v_.end() || Compare{}(key, it->first)) {
      it = v_.emplace(it, key, V{});
    }
    return it->second;
  }

  std::pair<iterator, bool> insert_or_assign(const K& key, V value) {
    iterator it = lower_bound(key);
    if (it != v_.end() && !Compare{}(key, it->first)) {
      it->second = std::move(value);
      return {it, false};
    }
    return {v_.emplace(it, key, std::move(value)), true};
  }

  iterator erase(iterator it) { return v_.erase(it); }
  std::size_t erase(const K& key) {
    iterator it = find(key);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  iterator lower_bound(const K& key) {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& a, const K& b) { return Compare{}(a.first, b); });
  }
  const_iterator lower_bound(const K& key) const {
    return std::lower_bound(
        v_.begin(), v_.end(), key,
        [](const value_type& a, const K& b) { return Compare{}(a.first, b); });
  }

  storage v_;
};

template <typename K, typename Compare = std::less<K>>
class SmallFlatSet {
 public:
  using storage = std::vector<K>;
  using iterator = typename storage::const_iterator;

  iterator begin() const { return v_.begin(); }
  iterator end() const { return v_.end(); }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  std::size_t count(const K& key) const {
    auto it = std::lower_bound(v_.begin(), v_.end(), key, Compare{});
    return it != v_.end() && !Compare{}(key, *it) ? 1 : 0;
  }

  std::pair<iterator, bool> insert(K key) {
    auto it = std::lower_bound(v_.begin(), v_.end(), key, Compare{});
    if (it != v_.end() && !Compare{}(key, *it)) return {it, false};
    return {v_.insert(it, std::move(key)), true};
  }

  std::size_t erase(const K& key) {
    auto it = std::lower_bound(v_.begin(), v_.end(), key, Compare{});
    if (it == v_.end() || Compare{}(key, *it)) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  storage v_;
};

// Open-addressed hash map. Memo owners forget entries wholesale with
// clear() (capacity is kept — the lifecycle of a memo is valid-until-
// invalidated, then rebuilt); the user-store index erases single keys via
// backward-shift deletion, which preserves the no-tombstone probe invariant.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatHashMap {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinSlots;
    while (cap < n * 2) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  V* find(const K& key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = probe_start(key);
    while (slots_[i].used) {
      if (Eq{}(slots_[i].key, key)) return &slots_[i].value;
      i = (i + 1) & (slots_.size() - 1);
    }
    return nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  // Find-or-default-construct (the std::map operator[] contract).
  V& operator[](const K& key) {
    if ((size_ + 1) * 2 > slots_.size()) {
      rehash(slots_.empty() ? kMinSlots : slots_.size() * 2);
    }
    std::size_t i = probe_start(key);
    while (slots_[i].used) {
      if (Eq{}(slots_[i].key, key)) return slots_[i].value;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i].used = true;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  // Backward-shift deletion: refill the vacated slot by sliding later
  // cluster members down whenever their ideal position is not cyclically
  // inside (hole, j] — i.e. whenever a probe for them would have passed
  // through the hole. Leaves no tombstone, so find() stays "probe until an
  // unused slot". Terminates because load <= 1/2 guarantees a gap.
  std::size_t erase(const K& key) {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t hole = probe_start(key);
    while (true) {
      if (!slots_[hole].used) return 0;
      if (Eq{}(slots_[hole].key, key)) break;
      hole = (hole + 1) & mask;
    }
    std::size_t j = hole;
    while (true) {
      j = (j + 1) & mask;
      if (!slots_[j].used) break;
      const std::size_t ideal = probe_start(slots_[j].key);
      const bool unmovable = (hole < j) ? (ideal > hole && ideal <= j)
                                        : (ideal > hole || ideal <= j);
      if (!unmovable) {
        slots_[hole].key = std::move(slots_[j].key);
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
    }
    slots_[hole].used = false;
    slots_[hole].key = K{};
    slots_[hole].value = V{};
    --size_;
    return 1;
  }

 private:
  static constexpr std::size_t kMinSlots = 16;

  struct Slot {
    K key{};
    V value{};
    bool used = false;
  };

  std::size_t probe_start(const K& key) const {
    // Multiply-shift mix: std::hash of an integral type is often identity,
    // which clusters badly under power-of-two masking.
    return (Hash{}(key) * 0x9e3779b97f4a7c15ull) & (slots_.size() - 1);
  }

  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) (*this)[s.key] = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace oak::util
