// Rule scopes (paper §4.1): "the scope is a path or regular expression which
// indicates to which pages within a site a rule should be applied."
//
// We implement a glob dialect that covers the paper's usage: "*" (site-wide),
// exact paths, "?" single-char, "*" multi-char wildcards, and "{a,b}"
// alternation. This is deliberately a glob and not std::regex: scope checks
// run on every page request for every rule of the requesting user.
#pragma once

#include <string>
#include <string_view>

namespace oak::util {

class Scope {
 public:
  // An empty pattern or "*" matches everything.
  explicit Scope(std::string pattern = "*");

  bool matches(std::string_view path) const;
  const std::string& pattern() const { return pattern_; }
  bool is_site_wide() const { return site_wide_; }

 private:
  std::string pattern_;
  bool site_wide_ = false;
};

// Core glob matcher, exposed for tests. Supports '*', '?', '{a,b,c}'.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace oak::util
