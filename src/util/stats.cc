#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace oak::util {

namespace {

double median_sorted(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (n % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return (lo + hi) / 2.0;
}

}  // namespace

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_sorted(v);
}

double mad(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double med = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - med));
  return median_sorted(dev);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

MadSummary mad_summary(std::span<const double> xs) {
  MadSummary s;
  s.n = xs.size();
  s.med = median(xs);
  s.mad = mad(xs);
  return s;
}

bool above_mad(double x, const MadSummary& s, double k) {
  return x > s.med + k * s.mad;
}

bool below_mad(double x, const MadSummary& s, double k) {
  return x < s.med - k * s.mad;
}

double mad_distance(double x, const MadSummary& s) {
  const double delta = x - s.med;
  if (s.mad > 0.0) return delta / s.mad;
  if (delta == 0.0) return 0.0;
  return delta > 0.0 ? std::numeric_limits<double>::infinity()
                     : -std::numeric_limits<double>::infinity();
}

}  // namespace oak::util
