#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace oak::util {

// Selection-based median: O(n) via nth_element instead of a full sort, and
// exactly the value a sort-based implementation yields (the same order
// statistics are read either way).
double median_inplace(std::span<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t n = xs.size();
  const std::size_t mid = n / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (n % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return (lo + hi) / 2.0;
}

MadSummary mad_summary_inplace(std::span<double> xs) {
  MadSummary s;
  s.n = xs.size();
  s.med = median_inplace(xs);
  if (xs.size() < 2) return s;  // MAD of <2 samples is defined as 0
  // Reuse the sample buffer for the deviations — no allocation at all.
  for (double& x : xs) x = std::fabs(x - s.med);
  s.mad = median_inplace(xs);
  return s;
}

double median(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median_inplace(v);
}

double mad(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  return mad_summary_inplace(v).mad;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(xs.begin(), xs.end());
  if (p >= 100.0) return *std::max_element(xs.begin(), xs.end());
  std::vector<double> v(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  // Select the lo-th order statistic; its upper neighbour is the minimum of
  // the partition nth_element leaves above it. Two O(n) passes instead of
  // one O(n log n) sort, same interpolated value.
  std::nth_element(v.begin(), v.begin() + lo, v.end());
  const double at_lo = v[lo];
  if (lo + 1 >= v.size()) return at_lo;
  const double at_hi = *std::min_element(v.begin() + lo + 1, v.end());
  return at_lo + frac * (at_hi - at_lo);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

MadSummary mad_summary(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return mad_summary_inplace(v);
}

bool above_mad(double x, const MadSummary& s, double k) {
  return x > s.med + k * s.mad;
}

bool below_mad(double x, const MadSummary& s, double k) {
  return x < s.med - k * s.mad;
}

double mad_distance(double x, const MadSummary& s) {
  const double delta = x - s.med;
  if (s.mad > 0.0) return delta / s.mad;
  if (delta == 0.0) return 0.0;
  return delta > 0.0 ? std::numeric_limits<double>::infinity()
                     : -std::numeric_limits<double>::infinity();
}

}  // namespace oak::util
