// Basic robust statistics used throughout Oak.
//
// Oak's violator detection (paper §4.2.1) is built on the median and the
// Median Absolute Deviation (MAD): a server is a violator when its metric is
// more than k·MAD on the wrong side of the median. These helpers are the
// single implementation of those primitives for the whole code base.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace oak::util {

// Median of a sample. Returns 0 for an empty sample. Uses the midpoint of the
// two central elements for even-sized samples.
double median(std::span<const double> xs);

// Median absolute deviation: median_i(|x_i - median_j(x_j)|).
// Returns 0 for samples of size < 2.
double mad(std::span<const double> xs);

// In-place selection median for hot paths that own their sample buffer:
// O(n) via std::nth_element, allocates nothing, partially reorders `xs`,
// and agrees bit-for-bit with median() above.
double median_inplace(std::span<double> xs);

// Arithmetic mean; 0 for empty samples.
double mean(std::span<const double> xs);

// Sample standard deviation (n-1 denominator); 0 for samples of size < 2.
double stddev(std::span<const double> xs);

// Linear-interpolated percentile, p in [0,100]. 0 for empty samples.
double percentile(std::span<const double> xs, double p);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

// Combined location/spread summary for one report population.
struct MadSummary {
  double med = 0.0;
  double mad = 0.0;
  std::size_t n = 0;
};

MadSummary mad_summary(std::span<const double> xs);

// In-place variant for callers that own their sample buffer (per-report
// violator detection builds its metric vectors fresh each time): two
// nth_element selections, zero allocation, identical result. Partially
// reorders `xs` and then overwrites it with deviations.
MadSummary mad_summary_inplace(std::span<double> xs);

// True when `x` lies more than `k` MADs *above* the median (slow time).
bool above_mad(double x, const MadSummary& s, double k);
// True when `x` lies more than `k` MADs *below* the median (low throughput).
bool below_mad(double x, const MadSummary& s, double k);

// Signed distance from the median in units of MAD. When the MAD is zero the
// distance is 0 for x == median and +/-infinity otherwise; callers that feed
// degenerate populations should check MadSummary::mad first.
double mad_distance(double x, const MadSummary& s);

}  // namespace oak::util
