// Deterministic random number generation for the simulator.
//
// Everything in the reproduction is seeded: the same seed yields the same
// corpus, network weather, and experiment output. Rng wraps a mt19937_64 and
// exposes the distributions the substrate needs (lognormal latency jitter,
// Zipf host popularity, Pareto-ish object sizes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace oak::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  // Derive an independent child stream, a pure function of (construction
  // seed, tag): forking never consumes entropy from the parent, so the
  // result does not depend on how many draws the parent has made.
  Rng fork(std::uint64_t tag) const;
  static Rng forked(std::uint64_t seed, std::uint64_t tag);

  std::uint64_t seed() const { return seed_; }

  double uniform(double lo, double hi);
  // Integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  bool chance(double p);
  double normal(double mean, double sigma);
  // Lognormal specified by the *median* of the resulting distribution and the
  // sigma of the underlying normal; convenient for multiplicative jitter
  // ("median 1.0, sigma 0.25" style).
  double lognormal_median(double median, double sigma);
  double exponential(double mean);
  // Bounded Pareto on [lo, hi] with shape alpha.
  double pareto(double lo, double hi, double alpha);
  // Zipf rank in [0, n) with exponent s.
  std::size_t zipf(std::size_t n, double s);

  // Pick an index from non-negative weights (must not all be zero).
  std::size_t weighted(const std::vector<double>& weights);

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

// FNV-1a hash of a string; used to derive stable per-entity sub-seeds.
std::uint64_t stable_hash(const std::string& s);

}  // namespace oak::util
