#include "util/scope.h"

#include "util/strings.h"

namespace oak::util {

namespace {

bool match_impl(std::string_view pat, std::string_view text) {
  // Iterative glob with single-star backtracking; alternation handled by
  // recursion on each branch.
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pat.size() && pat[p] == '{') {
      std::size_t close = pat.find('}', p);
      if (close == std::string_view::npos) return false;  // malformed
      std::string_view body = pat.substr(p + 1, close - p - 1);
      std::string_view rest = pat.substr(close + 1);
      for (const auto& alt : split(body, ',')) {
        std::string candidate = alt + std::string(rest);
        if (match_impl(candidate, text.substr(t))) return true;
      }
      // Alternation failed at this position; try star backtracking below.
      if (star_p == std::string_view::npos) return false;
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    if (p < pat.size() && (pat[p] == '?' || pat[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pat.size() && pat[p] == '*') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  if (p < pat.size() && pat[p] == '{') {
    std::size_t close = pat.find('}', p);
    if (close == std::string_view::npos) return false;
    std::string_view body = pat.substr(p + 1, close - p - 1);
    std::string_view rest = pat.substr(close + 1);
    for (const auto& alt : split(body, ',')) {
      std::string candidate = alt + std::string(rest);
      if (match_impl(candidate, "")) return true;
    }
    return false;
  }
  return p == pat.size();
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  return match_impl(pattern, text);
}

Scope::Scope(std::string pattern) : pattern_(std::move(pattern)) {
  site_wide_ = pattern_.empty() || pattern_ == "*";
}

bool Scope::matches(std::string_view path) const {
  if (site_wide_) return true;
  return glob_match(pattern_, path);
}

}  // namespace oak::util
