// Small string helpers shared by the HTML tokenizer, the rule matcher and
// report handling. All operate on ASCII, which is all the substrate emits.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace oak::util {

std::vector<std::string> split(std::string_view s, char sep);
// Split on `sep`, dropping empty fields.
std::vector<std::string> split_nonempty(std::string_view s, char sep);

std::string_view trim(std::string_view s);
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view haystack, std::string_view needle);
// Case-insensitive containment (ASCII).
bool icontains(std::string_view haystack, std::string_view needle);

// Replace every occurrence of `from` (must be non-empty) with `to`.
// Returns the number of replacements performed.
std::size_t replace_all(std::string& s, std::string_view from,
                        std::string_view to);

// Count non-overlapping occurrences of `needle` in `haystack`.
std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle);

// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Join elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace oak::util
