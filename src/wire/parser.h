// Incremental, allocation-bounded HTTP/1.1 request parser for the wire
// front-end.
//
// Every byte that reaches this parser came off a real socket and must be
// assumed hostile. The contract ("Software Testing at the Network Layer",
// PAPERS.md):
//
//  * Never crash, never read out of bounds, never allocate more than the
//    configured caps — regardless of input. bench/wire_fuzz drives ≥10k
//    mutated requests (every-byte truncations, bit flips, smuggled
//    framings) through it under ASan.
//  * Every malformed input maps to a terminal ParseError carrying the 4xx
//    status the connection should answer before closing — never an
//    exception, never a 5xx.
//  * Strict framing, because ambiguity is the request-smuggling class:
//    CRLF-only line endings (a bare LF or stray CR is an error), exactly
//    one Content-Length header of plain digits, any Transfer-Encoding
//    rejected outright (this origin never chunks), no obs-fold
//    continuation lines, no whitespace before the header colon.
//
// The parser is incremental: feed() appends whatever the socket produced
// and advances a three-phase state machine (request line → header block →
// body). Bytes beyond the current request stay buffered for pipelining;
// reset() discards the parsed request and immediately re-parses the
// residue, so a pipelined peer never stalls.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "http/headers.h"
#include "http/message.h"

namespace oak::wire {

// Hard limits applied while parsing, before anything is buffered past them.
struct ParserLimits {
  std::size_t max_request_line = 8 * 1024;  // method + target + version
  std::size_t max_header_count = 100;
  std::size_t max_header_bytes = 32 * 1024;  // header block incl. CRLFs
  std::size_t max_body_bytes = 1 << 20;      // Content-Length ceiling
};

// Terminal parse failure: the status the connection answers with before it
// closes, plus a stable reason literal for logs and metrics.
struct ParseError {
  int status = 400;
  const char* reason = "malformed";
};

// One parsed request. `method` is empty when the token was well-formed but
// not one the server routes (the router answers 405 + Allow); the raw token
// is preserved for diagnostics either way.
struct WireRequest {
  std::string method_text;
  std::optional<http::Method> method;
  std::string target;  // raw origin-form target as received
  std::string path;    // target up to '?'
  std::string query;   // after '?', may be empty
  std::string host;    // Host header, lowercased, port stripped
  int minor_version = 1;  // HTTP/1.<minor>
  http::Headers headers;
  std::string body;
  bool keep_alive = true;
  std::size_t head_bytes = 0;  // request line + header block size

  // Materialize the http::Request the serving plane consumes.
  http::Request to_http(const std::string& client_ip = "") const;
};

class RequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit RequestParser(ParserLimits limits = {});

  // Append bytes and advance as far as possible. Returns the new state.
  // In kComplete, surplus bytes are retained for the next request; in
  // kError, further feeds are ignored.
  State feed(std::string_view bytes);

  State state() const { return state_; }

  // Valid while state() == kComplete.
  const WireRequest& request() const { return req_; }
  WireRequest take_request() { return std::move(req_); }

  // Valid while state() == kError.
  const ParseError& error() const { return err_; }

  // After kComplete: drop the parsed request and re-parse any buffered
  // residue (pipelining). After kError the parser stays terminal — the
  // connection is done.
  void reset();

  // Bytes buffered but not yet consumed by a completed parse.
  std::size_t buffered() const { return buf_.size() - consumed_; }

  const ParserLimits& limits() const { return limits_; }

 private:
  enum class Phase { kLine, kHeaders, kBody };

  void advance();
  // Returns false and transitions to kError via fail() on malformed input.
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  // Validates framing headers (Host, Content-Length, Transfer-Encoding,
  // Connection) once the header block is complete.
  bool finish_head();
  void fail(int status, const char* reason);
  // Drops consumed bytes from the front of the buffer when they dominate
  // it, keeping the buffer bounded by (caps + one socket read).
  void compact_buffer();

  ParserLimits limits_;
  State state_ = State::kNeedMore;
  Phase phase_ = Phase::kLine;
  ParseError err_;
  WireRequest req_;

  std::string buf_;          // raw bytes, shared across pipelined requests
  std::size_t consumed_ = 0; // bytes of buf_ already owned by parsed requests
  std::size_t line_start_ = 0;  // first byte of the line being parsed
  std::size_t scan_ = 0;     // next unexamined byte (memchr resume point)
  std::size_t header_count_ = 0;
  std::size_t head_start_ = 0;
  std::uint64_t body_needed_ = 0;
};

}  // namespace oak::wire
