#include "wire/parser.h"

#include <cctype>
#include <cstring>

namespace oak::wire {

namespace {

// RFC 7230 token characters — the only bytes legal in a method or header
// name. Everything else (including SP/HT, so "Name :" is caught here) is a
// parse error.
bool token_char(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool token_string(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (!token_char(c)) return false;
  }
  return true;
}

// Printable ASCII, the only bytes we accept in a request target. No
// controls, no spaces (the line split guarantees that), no DEL, and —
// deliberately stricter than the RFC — no bytes ≥ 0x80.
bool target_char(unsigned char c) { return c > 0x20 && c < 0x7f; }

// Header value byte: HT, SP, visible ASCII, or obs-text (≥ 0x80). CR/LF
// cannot appear (the line split consumed them); NUL and other controls are
// rejected here.
bool value_char(unsigned char c) {
  return c == '\t' || (c >= 0x20 && c != 0x7f);
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ascii_iequal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

http::Request WireRequest::to_http(const std::string& client_ip) const {
  http::Request r;
  r.method = method.value_or(http::Method::kGet);
  r.url.scheme = "http";
  r.url.host = host;
  r.url.path = path.empty() ? "/" : path;
  r.url.query = query;
  r.headers = headers;
  r.body = body;
  r.client_ip = client_ip;
  return r;
}

RequestParser::RequestParser(ParserLimits limits) : limits_(limits) {
  // Degenerate caps would make every request unparseable; clamp to sane
  // floors so a mis-typed config fails loudly in review, not subtly here.
  if (limits_.max_request_line < 32) limits_.max_request_line = 32;
  if (limits_.max_header_bytes < 64) limits_.max_header_bytes = 64;
  if (limits_.max_header_count == 0) limits_.max_header_count = 1;
}

void RequestParser::fail(int status, const char* reason) {
  state_ = State::kError;
  err_ = ParseError{status, reason};
}

void RequestParser::compact_buffer() {
  if (consumed_ > (64u << 10) && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    scan_ -= consumed_;
    line_start_ -= std::min(line_start_, consumed_);
    head_start_ -= std::min(head_start_, consumed_);
    consumed_ = 0;
  }
}

RequestParser::State RequestParser::feed(std::string_view bytes) {
  if (state_ == State::kError) return state_;
  if (!bytes.empty()) {
    // The buffer is bounded: head caps bound the pre-body phases, the body
    // phase consumes at most max_body_bytes, and anything beyond the
    // current request is pipelined input bounded by the next request's own
    // caps as soon as reset() re-parses it. A peer that floods far past
    // every cap without ever completing a request is cut by the caps
    // themselves below.
    buf_.append(bytes.data(), bytes.size());
  }
  if (state_ == State::kNeedMore) advance();
  return state_;
}

void RequestParser::reset() {
  if (state_ != State::kComplete) return;
  req_ = WireRequest{};
  state_ = State::kNeedMore;
  phase_ = Phase::kLine;
  header_count_ = 0;
  body_needed_ = 0;
  head_start_ = consumed_;
  line_start_ = consumed_;
  scan_ = consumed_;
  compact_buffer();
  advance();
}

void RequestParser::advance() {
  while (state_ == State::kNeedMore) {
    if (phase_ == Phase::kBody) {
      const std::size_t have = buf_.size() - consumed_;
      if (have < body_needed_) return;  // wait for more bytes
      req_.body.assign(buf_, consumed_, static_cast<std::size_t>(body_needed_));
      consumed_ += static_cast<std::size_t>(body_needed_);
      body_needed_ = 0;
      state_ = State::kComplete;
      return;
    }

    // Line-oriented phases: find the next LF and demand a CRLF ending.
    const char* base = buf_.data();
    const char* nl = static_cast<const char*>(
        std::memchr(base + scan_, '\n', buf_.size() - scan_));
    if (nl == nullptr) {
      // No newline yet — enforce the phase cap on the unterminated prefix
      // so a peer cannot buffer unbounded garbage.
      const std::size_t cap_start =
          phase_ == Phase::kLine ? line_start_ : head_start_;
      const std::size_t extent = buf_.size() - cap_start;
      if (phase_ == Phase::kLine && extent > limits_.max_request_line) {
        return fail(414, "request line too long");
      }
      if (phase_ == Phase::kHeaders && extent > limits_.max_header_bytes) {
        return fail(431, "header block too large");
      }
      scan_ = buf_.size();
      return;
    }
    const std::size_t nl_pos = static_cast<std::size_t>(nl - base);
    if (nl_pos == line_start_ || buf_[nl_pos - 1] != '\r') {
      return fail(400, "bare LF");
    }
    std::string_view line(base + line_start_, nl_pos - 1 - line_start_);
    if (line.find('\r') != std::string_view::npos) {
      return fail(400, "stray CR");
    }

    if (phase_ == Phase::kLine) {
      if (line.empty()) {
        // Robustness exception (RFC 7230 §3.5): ignore empty CRLFs before
        // the request line — sloppy pipelining clients emit them.
        consumed_ = nl_pos + 1;
        line_start_ = consumed_;
        scan_ = consumed_;
        continue;
      }
      if (nl_pos + 1 - line_start_ > limits_.max_request_line) {
        return fail(414, "request line too long");
      }
      if (!parse_request_line(line)) return;
      req_.head_bytes = nl_pos + 1 - consumed_;
      head_start_ = nl_pos + 1;
      line_start_ = nl_pos + 1;
      scan_ = nl_pos + 1;
      phase_ = Phase::kHeaders;
      continue;
    }

    // Phase::kHeaders.
    if (nl_pos + 1 - head_start_ > limits_.max_header_bytes) {
      return fail(431, "header block too large");
    }
    if (line.empty()) {
      // Blank line: end of the header block.
      req_.head_bytes += nl_pos + 1 - head_start_;
      if (!finish_head()) return;
      consumed_ = nl_pos + 1;
      line_start_ = consumed_;
      scan_ = consumed_;
      phase_ = Phase::kBody;
      continue;
    }
    if (!parse_header_line(line)) return;
    line_start_ = nl_pos + 1;
    scan_ = nl_pos + 1;
  }
}

bool RequestParser::parse_request_line(std::string_view line) {
  const std::size_t s1 = line.find(' ');
  if (s1 == std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  const std::size_t s2 = line.find(' ', s1 + 1);
  if (s2 == std::string_view::npos ||
      line.find(' ', s2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, s1);
  const std::string_view target = line.substr(s1 + 1, s2 - s1 - 1);
  const std::string_view version = line.substr(s2 + 1);

  if (!token_string(method)) {
    fail(400, "malformed method");
    return false;
  }
  if (target.empty() || target[0] != '/') {
    fail(400, "target not origin-form");
    return false;
  }
  for (unsigned char c : target) {
    if (!target_char(c)) {
      fail(400, "control byte in target");
      return false;
    }
  }
  if (version == "HTTP/1.1") {
    req_.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    req_.minor_version = 0;
  } else {
    // Includes HTTP/0.9, HTTP/2-style prefaces and garbage. Deliberately
    // 400, not 505: the fuzz gate demands every parse failure stay in 4xx.
    fail(400, "unsupported version");
    return false;
  }

  req_.method_text.assign(method);
  req_.method = http::parse_method(method);
  req_.target.assign(target);
  const std::size_t q = target.find('?');
  req_.path.assign(target.substr(0, q));
  req_.query.assign(q == std::string_view::npos ? std::string_view{}
                                                : target.substr(q + 1));
  req_.keep_alive = req_.minor_version >= 1;
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    // Obsolete line folding — a classic smuggling vector; rejected.
    fail(400, "obs-fold continuation");
    return false;
  }
  if (++header_count_ > limits_.max_header_count) {
    fail(431, "too many headers");
    return false;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!token_string(name)) {
    // Also catches "Name : value" — whitespace before the colon changes
    // framing interpretation across proxies.
    fail(400, "malformed header name");
    return false;
  }
  const std::string_view value = trim_ows(line.substr(colon + 1));
  for (unsigned char c : value) {
    if (!value_char(c)) {
      fail(400, "control byte in header value");
      return false;
    }
  }
  if (!req_.headers.add(name, value)) {
    // The collection's backstop caps — unreachable while ParserLimits are
    // tighter, but a config raising them must not bypass the type's caps.
    fail(431, "header block too large");
    return false;
  }
  return true;
}

bool RequestParser::finish_head() {
  // Transfer-Encoding: this origin does not chunk. Its mere presence —
  // alone or next to Content-Length — is the request-smuggling class, and
  // is rejected before any framing decision is made.
  if (req_.headers.has("Transfer-Encoding")) {
    fail(400, "transfer-encoding unsupported");
    return false;
  }

  // Host: exactly one for HTTP/1.1; optional (but never duplicate) for 1.0.
  const auto hosts = req_.headers.get_all("Host");
  if (hosts.size() > 1) {
    fail(400, "duplicate host");
    return false;
  }
  if (hosts.empty() && req_.minor_version >= 1) {
    fail(400, "missing host");
    return false;
  }
  if (!hosts.empty()) {
    std::string host = hosts[0];
    for (char& c : host) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    // Strip a ":port" suffix when it is all digits; a malformed port is an
    // error, not silently kept as part of the name.
    const std::size_t colon = host.rfind(':');
    if (colon != std::string::npos) {
      const std::string_view port = std::string_view(host).substr(colon + 1);
      if (port.empty() ||
          port.find_first_not_of("0123456789") != std::string_view::npos) {
        fail(400, "malformed host");
        return false;
      }
      host.resize(colon);
    }
    if (host.empty() && req_.minor_version >= 1) {
      fail(400, "malformed host");
      return false;
    }
    req_.host = std::move(host);
  }

  // Content-Length: at most one, plain digits, within the body cap. Even
  // identical duplicates are rejected — deduplicating is how front-ends
  // and back-ends end up disagreeing about where the body ends.
  const auto cls = req_.headers.get_all("Content-Length");
  if (cls.size() > 1) {
    fail(400, "duplicate content-length");
    return false;
  }
  body_needed_ = 0;
  if (!cls.empty()) {
    const std::string& cl = cls[0];
    if (cl.empty() || cl.size() > 19 ||
        cl.find_first_not_of("0123456789") != std::string::npos) {
      // Catches signs, "1,1" lists, hex, 2^64 overflow attempts (>19
      // digits), and whitespace variants.
      fail(400, "malformed content-length");
      return false;
    }
    std::uint64_t n = 0;
    for (char c : cl) n = n * 10 + static_cast<std::uint64_t>(c - '0');
    if (n > limits_.max_body_bytes) {
      fail(413, "body too large");
      return false;
    }
    body_needed_ = n;
  }

  // Connection: close/keep-alive tokens override the version default.
  if (auto conn = req_.headers.get("Connection")) {
    std::string_view rest = *conn;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string_view tok = trim_ows(rest.substr(0, comma));
      if (ascii_iequal(tok, "close")) req_.keep_alive = false;
      else if (ascii_iequal(tok, "keep-alive")) req_.keep_alive = true;
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  return true;
}

}  // namespace oak::wire
