#include "wire/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/rule_parser.h"

namespace oak::wire {

namespace {

// epoll user-data sentinels; connection ids start above them.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventFdTag = 1;  // conn ids start at 2

// Timer kinds carried in Conn::timer_kind (one armed deadline per conn).
constexpr int kTimerNone = 0;
constexpr int kTimerHeader = 1;
constexpr int kTimerIdle = 2;
constexpr int kTimerWrite = 3;

void bump(obs::Counter* c, std::uint64_t n = 1) {
  if (c) c->inc(n);
}

bool iequal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

// The SIGTERM handler can only touch async-signal-safe state: one atomic
// flag plus an eventfd write to kick the epoll loop. One server per process
// owns the handler (install_signal_drain documents this).
std::atomic<std::atomic<bool>*> g_drain_flag{nullptr};
std::atomic<int> g_drain_fd{-1};

extern "C" void oak_wire_drain_handler(int) {
  if (auto* flag = g_drain_flag.load(std::memory_order_relaxed)) {
    flag->store(true, std::memory_order_release);
  }
  const int fd = g_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(fd, &one, sizeof one);
  }
}

}  // namespace

// Per-connection state, owned by the loop thread. Exactly one response is
// outstanding at a time (`dispatched` / `out`), so pipelined peers get
// their responses in request order without any per-conn queue.
struct Server::Conn {
  std::uint64_t id = 0;
  int fd = -1;
  std::string client_ip;
  RequestParser parser;
  std::string out;            // serialized response being written
  std::size_t out_off = 0;
  bool want_read = true;      // current epoll interest
  bool want_write = false;
  bool dispatched = false;    // a request is with the worker pool
  bool close_after_write = false;
  bool response_open = false;  // `out` holds a response not yet fully flushed
  bool read_eof = false;       // peer half-closed (shutdown(SHUT_WR))
  int timer_kind = kTimerNone;
  double req_start = -1.0;  // wall start of the in-progress request

  explicit Conn(const ParserLimits& limits) : parser(limits) {}
};

Server::Server(core::ShardedOakServer& oak, WireConfig cfg)
    : oak_(oak),
      cfg_(std::move(cfg)),
      report_path_(oak.config().report_path),
      epoch_(std::chrono::steady_clock::now()),
      wheel_(0.05) {
  if (cfg_.worker_threads == 0) cfg_.worker_threads = 1;
  if (cfg_.metrics) {
    obs_.accepted = &metrics_.counter("oak_wire_conns_accepted_total");
    obs_.closed = &metrics_.counter("oak_wire_conns_closed_total");
    obs_.requests = &metrics_.counter("oak_wire_requests_total");
    obs_.resp_2xx = &metrics_.counter("oak_wire_responses_2xx_total");
    obs_.resp_4xx = &metrics_.counter("oak_wire_responses_4xx_total");
    obs_.resp_5xx = &metrics_.counter("oak_wire_responses_5xx_total");
    obs_.parse_errors = &metrics_.counter("oak_wire_parse_errors_total");
    obs_.shed_conns = &metrics_.counter("oak_wire_shed_conn_cap_total");
    obs_.shed_dispatch = &metrics_.counter("oak_wire_shed_dispatch_total");
    obs_.shed_backpressure =
        &metrics_.counter("oak_wire_shed_backpressure_total");
    obs_.timeout_header = &metrics_.counter("oak_wire_timeout_header_total");
    obs_.timeout_idle = &metrics_.counter("oak_wire_timeout_idle_total");
    obs_.timeout_write = &metrics_.counter("oak_wire_timeout_write_total");
    obs_.bytes_in = &metrics_.counter("oak_wire_bytes_in_total");
    obs_.bytes_out = &metrics_.counter("oak_wire_bytes_out_total");
    obs_.conns_active = &metrics_.gauge("oak_wire_conns_active");
    obs_.dispatch_depth = &metrics_.gauge("oak_wire_dispatch_depth");
    obs_.draining = &metrics_.gauge("oak_wire_draining");
    obs_.request_seconds = &metrics_.histogram("oak_wire_request_seconds",
                                               obs::HistogramSpec::latency());
  }
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    request_drain();
    join();
  }
  if (g_drain_flag.load(std::memory_order_relaxed) == &drain_flag_) {
    g_drain_flag.store(nullptr, std::memory_order_relaxed);
    g_drain_fd.store(-1, std::memory_order_relaxed);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

double Server::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

obs::MetricsSnapshot Server::metrics_snapshot() const {
  return metrics_.snapshot();
}

void Server::start() {
  if (started_.load(std::memory_order_acquire)) {
    throw std::runtime_error("wire::Server already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad bind_addr: " + cfg_.bind_addr);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(errno));
  }
  if (::listen(listen_fd_, 512) < 0) {
    throw std::runtime_error("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    throw std::runtime_error("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventFdTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  workers_.reserve(cfg_.worker_threads);
  for (std::size_t i = 0; i < cfg_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  loop_thread_ = std::thread([this] { run(); });
  started_.store(true, std::memory_order_release);
}

void Server::request_drain() {
  drain_flag_.store(true, std::memory_order_release);
  if (event_fd_ >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(event_fd_, &one, sizeof one);
  }
}

void Server::join() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

void Server::stop() {
  request_drain();
  join();
}

void Server::install_signal_drain(int signo) {
  g_drain_flag.store(&drain_flag_, std::memory_order_relaxed);
  g_drain_fd.store(event_fd_, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = oak_wire_drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(signo, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Event loop.

void Server::run() {
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 25);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        handle_accept();
      } else if (tag == kEventFdTag) {
        std::uint64_t v;
        while (::read(event_fd_, &v, sizeof v) > 0) {
        }
        drain_completions();
      } else {
        handle_conn_event(tag, events[i].events);
      }
    }

    const double t = now();
    wheel_.advance(t, [this](std::uint64_t id) { on_deadline(id); });

    if (drain_flag_.load(std::memory_order_acquire) &&
        !drain_started_loopside_) {
      start_drain_loopside();
    }
    if (drain_started_loopside_) {
      drain_completions();
      if (drain_finished()) break;
      if (cfg_.drain_deadline_s > 0 &&
          t - drain_started_at_ >= cfg_.drain_deadline_s) {
        // Deadline: force-close stragglers and drop unstarted work. The
        // loop keeps spinning only for in-flight worker items (their
        // completions are then discarded against the closed conns).
        std::vector<std::uint64_t> ids;
        ids.reserve(conns_.size());
        for (const auto& [id, c] : conns_) ids.push_back(id);
        for (std::uint64_t id : ids) {
          auto it = conns_.find(id);
          if (it != conns_.end()) close_conn(*it->second);
        }
        {
          std::lock_guard<std::mutex> lk(dmu_);
          dispatch_.clear();
          if (obs_.dispatch_depth) obs_.dispatch_depth->set(0);
        }
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(dmu_);
    workers_stop_ = true;
  }
  dcv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lk(cmu_);
    completions_.clear();
  }
  if (on_drained_) on_drained_();
}

bool Server::drain_finished() const {
  if (!conns_.empty()) return false;
  {
    std::lock_guard<std::mutex> lk(dmu_);
    if (!dispatch_.empty() || inflight_ != 0) return false;
  }
  std::lock_guard<std::mutex> lk(cmu_);
  return completions_.empty();
}

void Server::start_drain_loopside() {
  drain_started_loopside_ = true;
  drain_started_at_ = now();
  if (obs_.draining) obs_.draining->set(1);

  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // In-flight work (a dispatched request or a half-written response)
  // finishes and then closes; everything else — idle keep-alive conns and
  // half-received heads that were never admitted — closes now.
  std::vector<std::uint64_t> to_close;
  for (auto& [id, c] : conns_) {
    if (c->dispatched || c->out_off < c->out.size()) {
      c->close_after_write = true;
    } else {
      to_close.push_back(id);
    }
  }
  for (std::uint64_t id : to_close) {
    auto it = conns_.find(id);
    if (it != conns_.end()) close_conn(*it->second);
  }
}

void Server::handle_accept() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t plen = sizeof peer;
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for epoll
    }
    if (drain_started_loopside_) {
      ::close(fd);
      continue;
    }
    if (conns_.size() >= cfg_.max_connections) {
      // Accept-time shed: refuse in O(1), no parser state allocated. The
      // write is best-effort — a full socket buffer just means the peer
      // sees a bare close.
      bump(obs_.shed_conns);
      const std::string resp =
          "HTTP/1.1 503 Service Unavailable\r\nRetry-After: " +
          std::to_string(cfg_.retry_after_s) +
          "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
      [[maybe_unused]] ssize_t r =
          ::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(cfg_.limits);
    conn->id = id;
    conn->fd = fd;
    char ip[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
    conn->client_ip = ip;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn& c = *conn;
    conns_.emplace(id, std::move(conn));
    bump(obs_.accepted);
    if (obs_.conns_active) obs_.conns_active->set(double(conns_.size()));
    if (cfg_.header_deadline_s > 0) {
      arm_timer(c, kTimerHeader, cfg_.header_deadline_s);
    }
  }
}

void Server::handle_conn_event(std::uint64_t id, std::uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_conn(c);
    return;
  }
  if (events & EPOLLIN) {
    read_conn(c);
    if (!conns_.count(id)) return;  // read_conn may close
  }
  if (events & EPOLLOUT) pump(c);
}

void Server::read_conn(Conn& c) {
  char buf[16 * 1024];
  std::size_t total = 0;
  // Bound per-event work so one firehose conn can't starve the loop;
  // level-triggered epoll re-delivers whatever stays in the kernel buffer.
  while (total < 64 * 1024) {
    const ssize_t n = ::read(c.fd, buf, sizeof buf);
    if (n > 0) {
      bump(obs_.bytes_in, static_cast<std::uint64_t>(n));
      if (c.timer_kind == kTimerIdle && cfg_.header_deadline_s > 0) {
        // First bytes of a new keep-alive request: idle → header budget.
        arm_timer(c, kTimerHeader, cfg_.header_deadline_s);
      }
      c.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      total += static_cast<std::size_t>(n);
      // Stop at a complete request (or terminal error): the response goes
      // out before more pipelined input is pulled from the kernel.
      if (c.parser.state() != RequestParser::State::kNeedMore) break;
      continue;
    }
    if (n == 0) {
      c.read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(c);
    return;
  }
  pump(c);
}

void Server::pump(Conn& c) {
  for (;;) {
    if (c.out_off < c.out.size()) {
      if (!try_write(c)) {
        close_conn(c);
        return;
      }
      if (c.out_off < c.out.size()) {  // EAGAIN mid-response
        if (c.timer_kind != kTimerWrite && cfg_.write_deadline_s > 0) {
          arm_timer(c, kTimerWrite, cfg_.write_deadline_s);
        }
        update_epoll(c, !c.dispatched && !c.close_after_write, true);
        return;
      }
      // Response fully flushed.
      c.out.clear();
      c.out_off = 0;
      if (c.timer_kind == kTimerWrite) {
        wheel_.cancel(c.id);
        c.timer_kind = kTimerNone;
      }
      if (c.response_open) finished_response(c);
    }

    if (c.close_after_write) {
      close_conn(c);
      return;
    }
    if (c.dispatched) {
      update_epoll(c, false, false);
      return;
    }

    switch (c.parser.state()) {
      case RequestParser::State::kComplete:
        begin_request(c);
        continue;
      case RequestParser::State::kError: {
        // Terminal by contract: answer the 4xx the parser chose, close.
        bump(obs_.parse_errors);
        const ParseError& e = c.parser.error();
        respond_inline(c, e.status, e.reason, /*keep_alive=*/false);
        continue;  // loop flushes, then close_after_write closes
      }
      case RequestParser::State::kNeedMore: {
        if (c.read_eof) {
          // Peer finished sending and everything owed has been written —
          // an incomplete trailing request gets a clean close, not a 4xx.
          close_conn(c);
          return;
        }
        const bool mid_head = c.parser.buffered() > 0;
        const int kind = mid_head ? kTimerHeader : kTimerIdle;
        const double deadline =
            mid_head ? cfg_.header_deadline_s : cfg_.idle_deadline_s;
        if (c.timer_kind != kind) {
          if (deadline > 0) {
            arm_timer(c, kind, deadline);
          } else if (c.timer_kind != kTimerNone) {
            wheel_.cancel(c.id);
            c.timer_kind = kTimerNone;
          }
        }
        update_epoll(c, true, false);
        return;
      }
    }
  }
}

void Server::begin_request(Conn& c) {
  WireRequest req = c.parser.take_request();
  c.parser.reset();  // re-parses residue so pipelined peers never stall
  if (c.timer_kind != kTimerNone) {
    wheel_.cancel(c.id);
    c.timer_kind = kTimerNone;
  }
  bump(obs_.requests);
  c.req_start = now();
  const bool ka = req.keep_alive && !drain_started_loopside_;

  if (!req.method) {
    // Well-formed but unrouted method token.
    respond_inline(c, 405, "method not allowed", ka,
                   {{"Allow", http::kAllowedMethods}});
    return;
  }

  // Backpressure shed: refuse report ingest before any work is admitted
  // once the combining queue is near its bound — an open-loop overload
  // must fail fast here, not queue into collapse.
  if (*req.method == http::Method::kPost && req.path == report_path_ &&
      cfg_.shed_pressure < 1.0 &&
      oak_.ingest_pressure() >= cfg_.shed_pressure) {
    bump(obs_.shed_backpressure);
    respond_inline(c, 503, "overloaded", ka,
                   {{"Retry-After", std::to_string(cfg_.retry_after_s)}});
    return;
  }

  bool shed = false;
  {
    std::lock_guard<std::mutex> lk(dmu_);
    if (dispatch_.size() >= cfg_.dispatch_depth) {
      shed = true;
    } else {
      dispatch_.push_back(DispatchItem{c.id, std::move(req), c.client_ip,
                                       c.req_start});
      if (obs_.dispatch_depth) {
        obs_.dispatch_depth->set(double(dispatch_.size()));
      }
    }
  }
  if (shed) {
    bump(obs_.shed_dispatch);
    respond_inline(c, 503, "server busy", ka,
                   {{"Retry-After", std::to_string(cfg_.retry_after_s)}});
    return;
  }
  dcv_.notify_one();
  c.dispatched = true;
}

void Server::respond_inline(
    Conn& c, int status, const std::string& body, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  http::Response resp = http::Response::text(body, status);
  for (const auto& [k, v] : extra_headers) resp.headers.set(k, v);
  deliver(c, serialize_response(resp, keep_alive, /*head_request=*/false),
          keep_alive, status);
}

void Server::deliver(Conn& c, std::string bytes, bool keep_alive,
                     int status) {
  if (status >= 200 && status < 300) {
    bump(obs_.resp_2xx);
  } else if (status >= 400 && status < 500) {
    bump(obs_.resp_4xx);
  } else if (status >= 500) {
    bump(obs_.resp_5xx);
  }
  if (!keep_alive) c.close_after_write = true;
  if (c.out.empty()) {
    c.out = std::move(bytes);
    c.out_off = 0;
  } else {
    c.out += bytes;
  }
  c.response_open = true;
}

bool Server::try_write(Conn& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      bump(obs_.bytes_out, static_cast<std::uint64_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: peer is gone
  }
  return true;
}

void Server::finished_response(Conn& c) {
  if (c.req_start >= 0) {
    if (obs_.request_seconds) {
      obs_.request_seconds->observe(now() - c.req_start);
    }
    c.req_start = -1.0;
  }
  c.response_open = false;
}

void Server::on_deadline(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  const int kind = c.timer_kind;
  c.timer_kind = kTimerNone;  // the wheel already dropped its state
  switch (kind) {
    case kTimerHeader:
      bump(obs_.timeout_header);
      respond_inline(c, 408, "request header timeout", /*keep_alive=*/false);
      pump(c);
      break;
    case kTimerIdle:
      bump(obs_.timeout_idle);
      close_conn(c);
      break;
    case kTimerWrite:
      bump(obs_.timeout_write);
      close_conn(c);
      break;
    default:
      break;
  }
}

void Server::close_conn(Conn& c) {
  const std::uint64_t id = c.id;
  wheel_.cancel(id);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  conns_.erase(id);  // destroys c — must be the last touch
  bump(obs_.closed);
  if (obs_.conns_active) obs_.conns_active->set(double(conns_.size()));
}

void Server::arm_timer(Conn& c, int kind, double delay_s) {
  c.timer_kind = kind;
  wheel_.schedule(c.id, now() + delay_s);
}

void Server::update_epoll(Conn& c, bool want_read, bool want_write) {
  if (c.want_read == want_read && c.want_write == want_write) return;
  c.want_read = want_read;
  c.want_write = want_write;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::drain_completions() {
  std::vector<CompletionItem> items;
  {
    std::lock_guard<std::mutex> lk(cmu_);
    items.swap(completions_);
  }
  for (auto& ci : items) {
    auto it = conns_.find(ci.conn_id);
    if (it == conns_.end()) continue;  // conn closed while the worker ran
    Conn& c = *it->second;
    c.dispatched = false;
    deliver(c, std::move(ci.bytes), ci.keep_alive, ci.status);
    pump(c);
  }
}

// ---------------------------------------------------------------------------
// Worker pool.

void Server::worker_main() {
  for (;;) {
    DispatchItem item;
    {
      std::unique_lock<std::mutex> lk(dmu_);
      dcv_.wait(lk, [this] { return workers_stop_ || !dispatch_.empty(); });
      if (dispatch_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      item = std::move(dispatch_.front());
      dispatch_.pop_front();
      ++inflight_;
      if (obs_.dispatch_depth) {
        obs_.dispatch_depth->set(double(dispatch_.size()));
      }
    }

    http::Response resp;
    try {
      resp = route(item);
    } catch (const std::exception& e) {
      resp = http::Response::text(std::string("internal error: ") + e.what(),
                                  500);
    } catch (...) {
      resp = http::Response::text("internal error", 500);
    }
    CompletionItem ci = make_completion(item.conn_id, item.req, resp);
    {
      std::lock_guard<std::mutex> lk(cmu_);
      completions_.push_back(std::move(ci));
    }
    {
      std::lock_guard<std::mutex> lk(dmu_);
      --inflight_;
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(event_fd_, &one, sizeof one);
  }
}

http::Response Server::route(const DispatchItem& item) {
  using http::Method;
  const WireRequest& w = item.req;
  const Method m = *w.method;  // begin_request guarantees a routed method
  const std::string& p = w.path;

  auto method_not_allowed = [](const char* allow) {
    http::Response r = http::Response::text("method not allowed", 405);
    r.headers.set("Allow", allow);
    return r;
  };
  const bool is_read = (m == Method::kGet || m == Method::kHead);

  if (p == "/metrics" || p == "/metrics.json") {
    if (!is_read) return method_not_allowed("GET, HEAD");
    obs::MetricsSnapshot snap = oak_.metrics_snapshot();
    snap.merge(metrics_snapshot());
    return p == "/metrics"
               ? http::Response::text(snap.to_prometheus())
               : http::Response::json(snap.to_json().dump());
  }
  if (p == "/admin/health") {
    if (!is_read) return method_not_allowed("GET, HEAD");
    return http::Response::json(std::string("{\"status\":\"") +
                                (draining() ? "draining" : "ok") + "\"}");
  }
  if (p == "/admin/rules") {
    if (is_read) {
      return http::Response::text(core::format_rules(oak_.rules()));
    }
    if (m == Method::kPost || m == Method::kPut) {
      std::vector<core::Rule> rules;
      try {
        rules = core::parse_rules(w.body);
      } catch (const core::RuleParseError& e) {
        return http::Response::text(e.what(), 400);
      }
      if (m == Method::kPut) {
        for (const auto& r : oak_.rules()) {
          oak_.remove_rule(r.id, item.admitted_at);
        }
      }
      std::string ids;
      for (auto& r : rules) {
        if (!ids.empty()) ids += ',';
        ids += std::to_string(oak_.add_rule(std::move(r)));
      }
      return http::Response::json(
          std::string("{\"") + (m == Method::kPut ? "replaced" : "added") +
              "\":[" + ids + "]}",
          201);
    }
    return method_not_allowed("GET, HEAD, POST, PUT");
  }
  if (p.rfind("/admin/rules/", 0) == 0) {
    if (m != Method::kDelete) return method_not_allowed("DELETE");
    const std::string tail = p.substr(std::strlen("/admin/rules/"));
    int id = 0;
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      return http::Response::text("bad rule id", 400);
    }
    try {
      id = std::stoi(tail);
    } catch (const std::exception&) {
      return http::Response::text("bad rule id", 400);
    }
    if (!oak_.remove_rule(id, item.admitted_at)) {
      return http::Response::text("no such rule", 404);
    }
    return http::Response::json("{\"removed\":" + std::to_string(id) + "}");
  }
  if (p == "/admin/compact") {
    if (m != Method::kPost) return method_not_allowed("POST");
    oak_.compact();
    return http::Response::json("{\"compacted\":true}");
  }
  if (p.rfind("/admin/", 0) == 0) {
    return http::Response::text("no such admin endpoint", 404);
  }

  if (m == Method::kPost) {
    if (p != report_path_) return method_not_allowed("GET, HEAD");
    return oak_.handle(w.to_http(item.client_ip), item.admitted_at);
  }
  if (is_read) {
    return oak_.handle(w.to_http(item.client_ip), item.admitted_at);
  }
  return method_not_allowed("GET, HEAD, POST");  // PUT/DELETE off-admin
}

Server::CompletionItem Server::make_completion(
    std::uint64_t conn_id, const WireRequest& req,
    const http::Response& resp) const {
  const bool ka = req.keep_alive && !draining();
  const bool head = req.method && *req.method == http::Method::kHead;
  return CompletionItem{conn_id, serialize_response(resp, ka, head), ka,
                        resp.status};
}

std::string Server::serialize_response(const http::Response& resp,
                                       bool keep_alive, bool head_request) {
  std::string out;
  out.reserve(resp.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += http::status_reason(resp.status);
  out += "\r\n";
  for (const auto& [name, value] : resp.headers.entries()) {
    // Framing is owned here, whatever the handler set.
    if (iequal(name, "content-length") || iequal(name, "connection") ||
        iequal(name, "transfer-encoding")) {
      continue;
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(resp.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  if (!head_request) out += resp.body;
  return out;
}

}  // namespace oak::wire
