#include "wire/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/rule_parser.h"
#include "http/cookies.h"

namespace oak::wire {

namespace {

// epoll user-data sentinels; connection ids start above them.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventFdTag = 1;   // per-loop completions wakeup
constexpr std::uint64_t kDrainFdTag = 2;   // shared drain wakeup (oneshot)
constexpr std::uint64_t kFirstConnId = 3;

// Timer kinds carried in Conn::timer_kind (one armed deadline per conn).
constexpr int kTimerNone = 0;
constexpr int kTimerHeader = 1;
constexpr int kTimerIdle = 2;
constexpr int kTimerWrite = 3;

// Pipelined-output bounds: phase 1 of pump() stops answering buffered
// requests once this much response data is queued, so a peer that
// pipelines thousands of requests and never reads can't make us buffer
// unbounded output.
constexpr std::size_t kSoftOutCap = 64 * 1024;
// iovec fan-in per sendmsg call; responses beyond this wait for the next.
constexpr std::size_t kMaxIov = 64;

void bump(obs::Counter* c, std::uint64_t n = 1) {
  if (c) c->inc(n);
}

bool iequal(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

// The SIGTERM handler can only touch async-signal-safe state: one atomic
// flag plus an eventfd write to kick the epoll loops. One server per
// process owns the handler (install_signal_drain documents this).
std::atomic<std::atomic<bool>*> g_drain_flag{nullptr};
std::atomic<int> g_drain_fd{-1};

extern "C" void oak_wire_drain_handler(int) {
  if (auto* flag = g_drain_flag.load(std::memory_order_relaxed)) {
    flag->store(true, std::memory_order_release);
  }
  const int fd = g_drain_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(fd, &one, sizeof one);
  }
}

}  // namespace

// One event loop: its own SO_REUSEPORT listener, epoll set, completion
// queue, timer wheel and connection table. Everything here except
// `completions`/`cmu` (workers push) and `event_fd` (workers kick) is
// touched only by the loop's own thread.
struct Server::Loop {
  std::size_t index = 0;
  int listen_fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;  // worker completions wakeup
  std::thread thread;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  TimerWheel wheel{0.05};

  bool drain_started = false;
  double drain_started_at = 0.0;
  // Items this loop dispatched to the worker pool whose completion it has
  // not yet consumed (or discarded against a closed conn). Loop-thread
  // only: incremented at dispatch, decremented at consumption.
  std::size_t outstanding = 0;

  // Completion queue: workers → this loop.
  std::mutex cmu;
  std::vector<CompletionItem> completions;

  // Per-loop instruments (oak_wire_loop_<i>_*); null when metrics are off.
  obs::Counter* obs_accepts = nullptr;
  obs::Gauge* obs_conns = nullptr;
  obs::Histogram* obs_lag = nullptr;
};

// Per-connection state, owned by one loop's thread. Responses queue in
// `outq` (pipelined peers get theirs in request order) and flush together
// through one sendmsg/writev call.
struct Server::Conn {
  Loop* loop = nullptr;
  std::uint64_t id = 0;
  int fd = -1;
  std::string client_ip;
  RequestParser parser;
  std::deque<std::string> outq;  // serialized responses awaiting write
  std::size_t out_off = 0;       // write offset into outq.front()
  std::size_t out_bytes = 0;     // unwritten bytes across outq
  bool want_read = true;         // current epoll interest
  bool want_write = false;
  bool dispatched = false;    // a request is with the worker pool
  bool close_after_write = false;
  bool read_eof = false;      // peer half-closed (shutdown(SHUT_WR))
  int timer_kind = kTimerNone;
  double req_start = -1.0;  // wall start of the in-progress request

  explicit Conn(const ParserLimits& limits) : parser(limits) {}
};

Server::Server(core::ShardedOakServer& oak, WireConfig cfg)
    : oak_(oak),
      cfg_(std::move(cfg)),
      report_path_(oak.config().report_path),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.worker_threads == 0) cfg_.worker_threads = 1;
  if (cfg_.metrics) {
    obs_.accepted = &metrics_.counter("oak_wire_conns_accepted_total");
    obs_.closed = &metrics_.counter("oak_wire_conns_closed_total");
    obs_.requests = &metrics_.counter("oak_wire_requests_total");
    obs_.resp_2xx = &metrics_.counter("oak_wire_responses_2xx_total");
    obs_.resp_4xx = &metrics_.counter("oak_wire_responses_4xx_total");
    obs_.resp_5xx = &metrics_.counter("oak_wire_responses_5xx_total");
    obs_.parse_errors = &metrics_.counter("oak_wire_parse_errors_total");
    obs_.shed_conns = &metrics_.counter("oak_wire_shed_conn_cap_total");
    obs_.shed_dispatch = &metrics_.counter("oak_wire_shed_dispatch_total");
    obs_.shed_backpressure =
        &metrics_.counter("oak_wire_shed_backpressure_total");
    obs_.timeout_header = &metrics_.counter("oak_wire_timeout_header_total");
    obs_.timeout_idle = &metrics_.counter("oak_wire_timeout_idle_total");
    obs_.timeout_write = &metrics_.counter("oak_wire_timeout_write_total");
    obs_.bytes_in = &metrics_.counter("oak_wire_bytes_in_total");
    obs_.bytes_out = &metrics_.counter("oak_wire_bytes_out_total");
    obs_.affine_ingests = &metrics_.counter("oak_wire_affine_ingests_total");
    obs_.writev_calls = &metrics_.counter("oak_wire_writev_calls_total");
    obs_.writev_bufs = &metrics_.counter("oak_wire_writev_buffers_total");
    obs_.conns_active = &metrics_.gauge("oak_wire_conns_active");
    obs_.dispatch_depth = &metrics_.gauge("oak_wire_dispatch_depth");
    obs_.draining = &metrics_.gauge("oak_wire_draining");
    obs_.loops = &metrics_.gauge("oak_wire_loops");
    obs_.request_seconds = &metrics_.histogram("oak_wire_request_seconds",
                                               obs::HistogramSpec::latency());
  }
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    request_drain();
    join();
  }
  if (g_drain_flag.load(std::memory_order_relaxed) == &drain_flag_) {
    g_drain_flag.store(nullptr, std::memory_order_relaxed);
    g_drain_fd.store(-1, std::memory_order_relaxed);
  }
  for (auto& lp : loops_) {
    if (lp->listen_fd >= 0) ::close(lp->listen_fd);
    if (lp->event_fd >= 0) ::close(lp->event_fd);
    if (lp->epoll_fd >= 0) ::close(lp->epoll_fd);
  }
  if (drain_event_fd_ >= 0) ::close(drain_event_fd_);
}

double Server::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

obs::MetricsSnapshot Server::metrics_snapshot() const {
  return metrics_.snapshot();
}

int Server::make_listener(bool reuse_port) const {
  const bool v6 = cfg_.bind_addr.find(':') != std::string::npos;
  const int fd = ::socket(v6 ? AF_INET6 : AF_INET,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port) {
    // The kernel spreads incoming connections across every listener bound
    // with SO_REUSEPORT — the multi-loop accept path. All listeners
    // (including the first) must set it before bind.
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
      ::close(fd);
      throw std::runtime_error("setsockopt(SO_REUSEPORT) failed");
    }
  }

  int rc = -1;
  if (v6) {
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_port = htons(bound_port_ != 0 ? bound_port_ : cfg_.port);
    if (::inet_pton(AF_INET6, cfg_.bind_addr.c_str(), &addr.sin6_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("bad bind_addr: " + cfg_.bind_addr);
    }
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(bound_port_ != 0 ? bound_port_ : cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      throw std::runtime_error("bad bind_addr: " + cfg_.bind_addr);
    }
    rc = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  if (rc < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(err));
  }
  if (::listen(fd, 512) < 0) {
    ::close(fd);
    throw std::runtime_error("listen() failed");
  }
  return fd;
}

void Server::start() {
  if (started_.load(std::memory_order_acquire)) {
    throw std::runtime_error("wire::Server already started");
  }

  std::size_t nloops = cfg_.loops;
  if (nloops == 0) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    nloops = std::min<std::size_t>(
        hw, std::max<std::size_t>(1, oak_.shard_count()));
  }

  drain_event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (drain_event_fd_ < 0) throw std::runtime_error("eventfd setup failed");

  loops_.reserve(nloops);
  for (std::size_t i = 0; i < nloops; ++i) {
    auto lp = std::make_unique<Loop>();
    lp->index = i;
    lp->listen_fd = make_listener(/*reuse_port=*/nloops > 1);
    if (i == 0) {
      // Resolve port 0 off the first listener; the rest bind the same port.
      sockaddr_storage bound{};
      socklen_t blen = sizeof bound;
      ::getsockname(lp->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &blen);
      bound_port_ = ntohs(bound.ss_family == AF_INET6
                              ? reinterpret_cast<sockaddr_in6*>(&bound)
                                    ->sin6_port
                              : reinterpret_cast<sockaddr_in*>(&bound)
                                    ->sin_port);
    }

    lp->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    lp->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (lp->epoll_fd < 0 || lp->event_fd < 0) {
      throw std::runtime_error("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    ::epoll_ctl(lp->epoll_fd, EPOLL_CTL_ADD, lp->listen_fd, &ev);
    ev.data.u64 = kEventFdTag;
    ::epoll_ctl(lp->epoll_fd, EPOLL_CTL_ADD, lp->event_fd, &ev);
    // The shared drain eventfd is registered oneshot and never read: one
    // write wakes every loop exactly once (reading it would race the other
    // loops out of their wakeup), and oneshot keeps the still-readable fd
    // from busy-looping the epoll afterwards.
    ev.events = EPOLLIN | EPOLLONESHOT;
    ev.data.u64 = kDrainFdTag;
    ::epoll_ctl(lp->epoll_fd, EPOLL_CTL_ADD, drain_event_fd_, &ev);

    if (cfg_.metrics) {
      const std::string prefix = "oak_wire_loop_" + std::to_string(i);
      lp->obs_accepts = &metrics_.counter(prefix + "_accepts_total");
      lp->obs_conns = &metrics_.gauge(prefix + "_conns_active");
      lp->obs_lag = &metrics_.histogram(prefix + "_lag_seconds",
                                        obs::HistogramSpec::latency());
    }
    loops_.push_back(std::move(lp));
  }
  if (obs_.loops) obs_.loops->set(static_cast<double>(nloops));

  workers_.reserve(cfg_.worker_threads);
  for (std::size_t i = 0; i < cfg_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  for (auto& lp : loops_) {
    Loop* raw = lp.get();
    raw->thread = std::thread([this, raw] { run(*raw); });
  }
  // The coordinator is what makes "after the last connection closes and
  // the workers are joined" a single event even with N loops finishing at
  // different times: it joins every loop, then stops the shared pool, then
  // fires on_drained exactly once.
  coordinator_ = std::thread([this] {
    for (auto& lp : loops_) {
      if (lp->thread.joinable()) lp->thread.join();
    }
    {
      std::lock_guard<std::mutex> lk(dmu_);
      workers_stop_ = true;
    }
    dcv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    for (auto& lp : loops_) {
      std::lock_guard<std::mutex> lk(lp->cmu);
      lp->completions.clear();
    }
    if (on_drained_) on_drained_();
  });
  started_.store(true, std::memory_order_release);
}

void Server::request_drain() {
  drain_flag_.store(true, std::memory_order_release);
  if (drain_event_fd_ >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(drain_event_fd_, &one, sizeof one);
  }
}

void Server::join() {
  if (coordinator_.joinable()) coordinator_.join();
}

void Server::stop() {
  request_drain();
  join();
}

void Server::install_signal_drain(int signo) {
  g_drain_flag.store(&drain_flag_, std::memory_order_relaxed);
  g_drain_fd.store(drain_event_fd_, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = oak_wire_drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(signo, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Event loops.

void Server::run(Loop& lp) {
  epoll_event events[64];
  for (;;) {
    const int n = ::epoll_wait(lp.epoll_fd, events, 64, 25);
    if (n < 0 && errno != EINTR) break;
    const double t0 = now();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        handle_accept(lp);
      } else if (tag == kEventFdTag) {
        std::uint64_t v;
        while (::read(lp.event_fd, &v, sizeof v) > 0) {
        }
        drain_completions(lp);
      } else if (tag == kDrainFdTag) {
        // Wakeup only; the flag below is the signal. Never read the fd.
      } else {
        handle_conn_event(lp, tag, events[i].events);
      }
    }

    const double t = now();
    lp.wheel.advance(t, [this, &lp](std::uint64_t id) { on_deadline(lp, id); });
    // Loop lag = how long this wakeup's event processing stalled the loop;
    // the per-loop histogram is the saturation signal the overload sweep
    // watches (a loop pegged at milliseconds of lag is the old single-loop
    // bottleneck reappearing).
    if (lp.obs_lag) lp.obs_lag->observe(t - t0);

    if (drain_flag_.load(std::memory_order_acquire) && !lp.drain_started) {
      start_drain_loopside(lp);
    }
    if (lp.drain_started) {
      drain_completions(lp);
      if (drain_finished(lp)) break;
      if (cfg_.drain_deadline_s > 0 &&
          t - lp.drain_started_at >= cfg_.drain_deadline_s) {
        // Deadline: force-close stragglers and drop this loop's unstarted
        // work. The loop keeps spinning only for in-flight worker items
        // (their completions are then discarded against the closed conns).
        std::vector<std::uint64_t> ids;
        ids.reserve(lp.conns.size());
        for (const auto& [id, c] : lp.conns) ids.push_back(id);
        for (std::uint64_t id : ids) {
          auto it = lp.conns.find(id);
          if (it != lp.conns.end()) close_conn(*it->second);
        }
        {
          std::lock_guard<std::mutex> lk(dmu_);
          for (auto it = dispatch_.begin(); it != dispatch_.end();) {
            if (it->loop_index == lp.index) {
              it = dispatch_.erase(it);
              --lp.outstanding;
            } else {
              ++it;
            }
          }
          if (obs_.dispatch_depth) {
            obs_.dispatch_depth->set(double(dispatch_.size()));
          }
        }
      }
    }
  }
}

bool Server::drain_finished(const Loop& lp) const {
  // outstanding covers both queued dispatch items and unconsumed
  // completions: it only reaches zero once every item this loop admitted
  // has come back (or been dropped at the force-deadline).
  return lp.conns.empty() && lp.outstanding == 0;
}

void Server::start_drain_loopside(Loop& lp) {
  lp.drain_started = true;
  lp.drain_started_at = now();
  if (obs_.draining) obs_.draining->set(1);

  if (lp.listen_fd >= 0) {
    ::epoll_ctl(lp.epoll_fd, EPOLL_CTL_DEL, lp.listen_fd, nullptr);
    ::close(lp.listen_fd);
    lp.listen_fd = -1;
  }

  // In-flight work (a dispatched request or a half-written response)
  // finishes and then closes; everything else — idle keep-alive conns and
  // half-received heads that were never admitted — closes now.
  std::vector<std::uint64_t> to_close;
  for (auto& [id, c] : lp.conns) {
    if (c->dispatched || c->out_bytes > 0) {
      c->close_after_write = true;
    } else {
      to_close.push_back(id);
    }
  }
  for (std::uint64_t id : to_close) {
    auto it = lp.conns.find(id);
    if (it != lp.conns.end()) close_conn(*it->second);
  }
}

void Server::handle_accept(Loop& lp) {
  for (;;) {
    sockaddr_storage peer{};
    socklen_t plen = sizeof peer;
    const int fd =
        ::accept4(lp.listen_fd, reinterpret_cast<sockaddr*>(&peer), &plen,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: wait for epoll
    }
    if (lp.drain_started) {
      ::close(fd);
      continue;
    }
    if (total_conns_.load(std::memory_order_relaxed) >=
        cfg_.max_connections) {
      // Accept-time shed: refuse in O(1), no parser state allocated. The
      // write is best-effort — a full socket buffer just means the peer
      // sees a bare close.
      bump(obs_.shed_conns);
      const std::string resp =
          "HTTP/1.1 503 Service Unavailable\r\nRetry-After: " +
          std::to_string(cfg_.retry_after_s) +
          "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
      [[maybe_unused]] ssize_t r =
          ::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    const std::uint64_t id = lp.next_conn_id++;
    auto conn = std::make_unique<Conn>(cfg_.limits);
    conn->loop = &lp;
    conn->id = id;
    conn->fd = fd;
    // Format the peer address by family: an IPv6 (or dual-stack) listener
    // hands back sockaddr_in6, and pretending it was IPv4 left client_ip
    // silently empty.
    char ip[INET6_ADDRSTRLEN] = {0};
    if (peer.ss_family == AF_INET) {
      ::inet_ntop(AF_INET,
                  &reinterpret_cast<sockaddr_in*>(&peer)->sin_addr, ip,
                  sizeof ip);
    } else if (peer.ss_family == AF_INET6) {
      ::inet_ntop(AF_INET6,
                  &reinterpret_cast<sockaddr_in6*>(&peer)->sin6_addr, ip,
                  sizeof ip);
    }
    conn->client_ip = ip;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(lp.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Conn& c = *conn;
    lp.conns.emplace(id, std::move(conn));
    const std::size_t total =
        total_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
    bump(obs_.accepted);
    bump(lp.obs_accepts);
    if (obs_.conns_active) obs_.conns_active->set(double(total));
    if (lp.obs_conns) lp.obs_conns->set(double(lp.conns.size()));
    if (cfg_.header_deadline_s > 0) {
      arm_timer(c, kTimerHeader, cfg_.header_deadline_s);
    }
  }
}

void Server::handle_conn_event(Loop& lp, std::uint64_t id,
                               std::uint32_t events) {
  auto it = lp.conns.find(id);
  if (it == lp.conns.end()) return;
  Conn& c = *it->second;
  if (events & (EPOLLERR | EPOLLHUP)) {
    close_conn(c);
    return;
  }
  if (events & EPOLLIN) {
    read_conn(c);
    if (!lp.conns.count(id)) return;  // read_conn may close
  }
  if (events & EPOLLOUT) pump(c);
}

void Server::read_conn(Conn& c) {
  char buf[16 * 1024];
  std::size_t total = 0;
  // Bound per-event work so one firehose conn can't starve the loop;
  // level-triggered epoll re-delivers whatever stays in the kernel buffer.
  while (total < 64 * 1024) {
    const ssize_t n = ::read(c.fd, buf, sizeof buf);
    if (n > 0) {
      bump(obs_.bytes_in, static_cast<std::uint64_t>(n));
      if (c.timer_kind == kTimerIdle && cfg_.header_deadline_s > 0) {
        // First bytes of a new keep-alive request: idle → header budget.
        arm_timer(c, kTimerHeader, cfg_.header_deadline_s);
      }
      c.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      total += static_cast<std::size_t>(n);
      // Stop at a complete request (or terminal error): the response goes
      // out before more pipelined input is pulled from the kernel.
      if (c.parser.state() != RequestParser::State::kNeedMore) break;
      continue;
    }
    if (n == 0) {
      c.read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(c);
    return;
  }
  pump(c);
}

void Server::pump(Conn& c) {
  for (;;) {
    // Phase 1: answer parsed requests while nothing blocks us. Responses
    // accumulate in c.outq (inline report 204s, shed 503s, pipelined
    // residue) and flush together below — this is what turns a pipelined
    // burst into one writev instead of one send() per response.
    while (!c.close_after_write && !c.dispatched &&
           c.out_bytes < kSoftOutCap) {
      if (c.parser.state() == RequestParser::State::kComplete) {
        begin_request(c);
        continue;
      }
      if (c.parser.state() == RequestParser::State::kError) {
        // Terminal by contract: answer the 4xx the parser chose, close.
        bump(obs_.parse_errors);
        const ParseError& e = c.parser.error();
        respond_inline(c, e.status, e.reason, /*keep_alive=*/false);
        // respond_inline set close_after_write; the while exits.
      }
      break;
    }

    // Phase 2: one gathered write over everything queued.
    if (!flush_out(c)) {
      close_conn(c);
      return;
    }
    if (c.out_bytes > 0) {  // EAGAIN mid-flush
      if (c.timer_kind != kTimerWrite && cfg_.write_deadline_s > 0) {
        arm_timer(c, kTimerWrite, cfg_.write_deadline_s);
      }
      update_epoll(c, false, true);
      return;
    }
    if (c.timer_kind == kTimerWrite) {
      c.loop->wheel.cancel(c.id);
      c.timer_kind = kTimerNone;
    }

    // Phase 3: closure / interest bookkeeping.
    if (c.close_after_write) {
      close_conn(c);
      return;
    }
    if (c.dispatched) {
      update_epoll(c, false, false);
      return;
    }
    if (c.parser.state() == RequestParser::State::kComplete) {
      continue;  // the soft output cap paused phase 1; output is flushed now
    }
    // kNeedMore (kError always exits through close_after_write above).
    if (c.read_eof) {
      // Peer finished sending and everything owed has been written — an
      // incomplete trailing request gets a clean close, not a 4xx.
      close_conn(c);
      return;
    }
    const bool mid_head = c.parser.buffered() > 0;
    const int kind = mid_head ? kTimerHeader : kTimerIdle;
    const double deadline =
        mid_head ? cfg_.header_deadline_s : cfg_.idle_deadline_s;
    if (c.timer_kind != kind) {
      if (deadline > 0) {
        arm_timer(c, kind, deadline);
      } else if (c.timer_kind != kTimerNone) {
        c.loop->wheel.cancel(c.id);
        c.timer_kind = kTimerNone;
      }
    }
    update_epoll(c, true, false);
    return;
  }
}

bool Server::try_affine_ingest(Conn& c, WireRequest& req) {
  if (!cfg_.affine_ingest) return false;
  if (!req.method || *req.method != http::Method::kPost ||
      req.path != report_path_) {
    return false;
  }
  // Shard-affine dispatch: hash the request's oak_uid (cookie, or minted
  // by the wrapper when absent) to its shard and run the request on this
  // loop thread through that shard's combining queue — one hand-off,
  // instead of the loop → worker → completion cross-core round trip. The
  // combining queue keeps the blocking bounded (max_batch per lock
  // acquisition) and the backpressure shed in begin_request() keeps it
  // from queueing into collapse.
  std::string uid;
  if (auto cookie = req.headers.get("Cookie")) {
    auto jar = http::parse_cookie_header(*cookie);
    auto it = jar.find(http::kOakUserCookie);
    if (it != jar.end()) uid = it->second;
  }
  const bool ka = req.keep_alive && !c.loop->drain_started;
  http::Response resp;
  try {
    resp = oak_.handle_for_user(req.to_http(c.client_ip), c.req_start,
                                std::move(uid));
  } catch (const std::exception& e) {
    resp = http::Response::text(std::string("internal error: ") + e.what(),
                                500);
  } catch (...) {
    resp = http::Response::text("internal error", 500);
  }
  bump(obs_.affine_ingests);
  deliver(c, serialize_response(resp, ka, /*head_request=*/false), ka,
          resp.status);
  return true;
}

void Server::begin_request(Conn& c) {
  WireRequest req = c.parser.take_request();
  c.parser.reset();  // re-parses residue so pipelined peers never stall
  if (c.timer_kind != kTimerNone) {
    c.loop->wheel.cancel(c.id);
    c.timer_kind = kTimerNone;
  }
  bump(obs_.requests);
  c.req_start = now();
  const bool ka = req.keep_alive && !c.loop->drain_started;

  if (!req.method) {
    // Well-formed but unrouted method token.
    respond_inline(c, 405, "method not allowed", ka,
                   {{"Allow", http::kAllowedMethods}});
    return;
  }

  // Backpressure shed: refuse report ingest before any work is admitted
  // once the combining queue is near its bound — an open-loop overload
  // must fail fast here, not queue into collapse.
  if (*req.method == http::Method::kPost && req.path == report_path_ &&
      cfg_.shed_pressure < 1.0 &&
      oak_.ingest_pressure() >= cfg_.shed_pressure) {
    bump(obs_.shed_backpressure);
    respond_inline(c, 503, "overloaded", ka,
                   {{"Retry-After", std::to_string(cfg_.retry_after_s)}});
    return;
  }

  if (try_affine_ingest(c, req)) return;

  bool shed = false;
  {
    std::lock_guard<std::mutex> lk(dmu_);
    if (dispatch_.size() >= cfg_.dispatch_depth) {
      shed = true;
    } else {
      dispatch_.push_back(DispatchItem{c.loop->index, c.id, std::move(req),
                                       c.client_ip, c.req_start});
      if (obs_.dispatch_depth) {
        obs_.dispatch_depth->set(double(dispatch_.size()));
      }
    }
  }
  if (shed) {
    bump(obs_.shed_dispatch);
    respond_inline(c, 503, "server busy", ka,
                   {{"Retry-After", std::to_string(cfg_.retry_after_s)}});
    return;
  }
  ++c.loop->outstanding;
  dcv_.notify_one();
  c.dispatched = true;
}

void Server::respond_inline(
    Conn& c, int status, const std::string& body, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  http::Response resp = http::Response::text(body, status);
  for (const auto& [k, v] : extra_headers) resp.headers.set(k, v);
  deliver(c, serialize_response(resp, keep_alive, /*head_request=*/false),
          keep_alive, status);
}

void Server::deliver(Conn& c, std::string bytes, bool keep_alive,
                     int status) {
  if (status >= 200 && status < 300) {
    bump(obs_.resp_2xx);
  } else if (status >= 400 && status < 500) {
    bump(obs_.resp_4xx);
  } else if (status >= 500) {
    bump(obs_.resp_5xx);
  }
  if (!keep_alive) c.close_after_write = true;
  c.out_bytes += bytes.size();
  c.outq.push_back(std::move(bytes));
  if (c.req_start >= 0) {
    // Admission → response serialized. The write path beyond this point is
    // the peer's receive window, not server work.
    if (obs_.request_seconds) {
      obs_.request_seconds->observe(now() - c.req_start);
    }
    c.req_start = -1.0;
  }
}

bool Server::flush_out(Conn& c) {
  while (c.out_bytes > 0) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    std::size_t off = c.out_off;
    for (const std::string& b : c.outq) {
      if (niov == kMaxIov) break;
      iov[niov].iov_base = const_cast<char*>(b.data()) + off;
      iov[niov].iov_len = b.size() - off;
      ++niov;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    // sendmsg == writev with MSG_NOSIGNAL (a dead peer must surface as
    // EPIPE here, not SIGPIPE).
    const ssize_t w = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // EPIPE / ECONNRESET: peer is gone
    }
    bump(obs_.bytes_out, static_cast<std::uint64_t>(w));
    bump(obs_.writev_calls);
    bump(obs_.writev_bufs, niov);
    std::size_t left = static_cast<std::size_t>(w);
    while (left > 0) {
      std::string& front = c.outq.front();
      const std::size_t avail = front.size() - c.out_off;
      if (left >= avail) {
        left -= avail;
        c.out_bytes -= avail;
        c.out_off = 0;
        c.outq.pop_front();
      } else {
        c.out_off += left;
        c.out_bytes -= left;
        left = 0;
      }
    }
  }
  return true;
}

void Server::on_deadline(Loop& lp, std::uint64_t id) {
  auto it = lp.conns.find(id);
  if (it == lp.conns.end()) return;
  Conn& c = *it->second;
  const int kind = c.timer_kind;
  c.timer_kind = kTimerNone;  // the wheel already dropped its state
  switch (kind) {
    case kTimerHeader:
      bump(obs_.timeout_header);
      respond_inline(c, 408, "request header timeout", /*keep_alive=*/false);
      pump(c);
      break;
    case kTimerIdle:
      bump(obs_.timeout_idle);
      close_conn(c);
      break;
    case kTimerWrite:
      bump(obs_.timeout_write);
      close_conn(c);
      break;
    default:
      break;
  }
}

void Server::close_conn(Conn& c) {
  Loop& lp = *c.loop;
  const std::uint64_t id = c.id;
  lp.wheel.cancel(id);
  ::epoll_ctl(lp.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  lp.conns.erase(id);  // destroys c — must be the last touch
  const std::size_t total =
      total_conns_.fetch_sub(1, std::memory_order_relaxed) - 1;
  bump(obs_.closed);
  if (obs_.conns_active) obs_.conns_active->set(double(total));
  if (lp.obs_conns) lp.obs_conns->set(double(lp.conns.size()));
}

void Server::arm_timer(Conn& c, int kind, double delay_s) {
  c.timer_kind = kind;
  c.loop->wheel.schedule(c.id, now() + delay_s);
}

void Server::update_epoll(Conn& c, bool want_read, bool want_write) {
  if (c.want_read == want_read && c.want_write == want_write) return;
  c.want_read = want_read;
  c.want_write = want_write;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = c.id;
  ::epoll_ctl(c.loop->epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::drain_completions(Loop& lp) {
  std::vector<CompletionItem> items;
  {
    std::lock_guard<std::mutex> lk(lp.cmu);
    items.swap(lp.completions);
  }
  for (auto& ci : items) {
    --lp.outstanding;  // consumed, whether or not the conn survived
    auto it = lp.conns.find(ci.conn_id);
    if (it == lp.conns.end()) continue;  // conn closed while the worker ran
    Conn& c = *it->second;
    c.dispatched = false;
    deliver(c, std::move(ci.bytes), ci.keep_alive, ci.status);
    pump(c);
  }
}

// ---------------------------------------------------------------------------
// Worker pool (pages/admin; reports too when affine_ingest is off).

void Server::worker_main() {
  for (;;) {
    DispatchItem item;
    {
      std::unique_lock<std::mutex> lk(dmu_);
      dcv_.wait(lk, [this] { return workers_stop_ || !dispatch_.empty(); });
      if (dispatch_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      item = std::move(dispatch_.front());
      dispatch_.pop_front();
      if (obs_.dispatch_depth) {
        obs_.dispatch_depth->set(double(dispatch_.size()));
      }
    }

    http::Response resp;
    try {
      resp = route(item);
    } catch (const std::exception& e) {
      resp = http::Response::text(std::string("internal error: ") + e.what(),
                                  500);
    } catch (...) {
      resp = http::Response::text("internal error", 500);
    }
    CompletionItem ci = make_completion(item.conn_id, item.req, resp);
    Loop& lp = *loops_[item.loop_index];
    {
      std::lock_guard<std::mutex> lk(lp.cmu);
      lp.completions.push_back(std::move(ci));
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(lp.event_fd, &one, sizeof one);
  }
}

http::Response Server::route(const DispatchItem& item) {
  using http::Method;
  const WireRequest& w = item.req;
  const Method m = *w.method;  // begin_request guarantees a routed method
  const std::string& p = w.path;

  auto method_not_allowed = [](const char* allow) {
    http::Response r = http::Response::text("method not allowed", 405);
    r.headers.set("Allow", allow);
    return r;
  };
  const bool is_read = (m == Method::kGet || m == Method::kHead);

  if (p == "/metrics" || p == "/metrics.json") {
    if (!is_read) return method_not_allowed("GET, HEAD");
    obs::MetricsSnapshot snap = oak_.metrics_snapshot();
    snap.merge(metrics_snapshot());
    return p == "/metrics"
               ? http::Response::text(snap.to_prometheus())
               : http::Response::json(snap.to_json().dump());
  }
  if (p == "/admin/health") {
    if (!is_read) return method_not_allowed("GET, HEAD");
    return http::Response::json(std::string("{\"status\":\"") +
                                (draining() ? "draining" : "ok") + "\"}");
  }
  if (p == "/admin/rules") {
    if (is_read) {
      return http::Response::text(core::format_rules(oak_.rules()));
    }
    if (m == Method::kPost || m == Method::kPut) {
      std::vector<core::Rule> rules;
      try {
        rules = core::parse_rules(w.body);
      } catch (const core::RuleParseError& e) {
        return http::Response::text(e.what(), 400);
      }
      if (m == Method::kPut) {
        for (const auto& r : oak_.rules()) {
          oak_.remove_rule(r.id, item.admitted_at);
        }
      }
      std::string ids;
      for (auto& r : rules) {
        if (!ids.empty()) ids += ',';
        ids += std::to_string(oak_.add_rule(std::move(r)));
      }
      return http::Response::json(
          std::string("{\"") + (m == Method::kPut ? "replaced" : "added") +
              "\":[" + ids + "]}",
          201);
    }
    return method_not_allowed("GET, HEAD, POST, PUT");
  }
  if (p.rfind("/admin/rules/", 0) == 0) {
    if (m != Method::kDelete) return method_not_allowed("DELETE");
    const std::string tail = p.substr(std::strlen("/admin/rules/"));
    int id = 0;
    if (tail.empty() ||
        tail.find_first_not_of("0123456789") != std::string::npos) {
      return http::Response::text("bad rule id", 400);
    }
    try {
      id = std::stoi(tail);
    } catch (const std::exception&) {
      return http::Response::text("bad rule id", 400);
    }
    if (!oak_.remove_rule(id, item.admitted_at)) {
      return http::Response::text("no such rule", 404);
    }
    return http::Response::json("{\"removed\":" + std::to_string(id) + "}");
  }
  if (p == "/admin/compact") {
    if (m != Method::kPost) return method_not_allowed("POST");
    oak_.compact();
    return http::Response::json("{\"compacted\":true}");
  }
  if (p.rfind("/admin/", 0) == 0) {
    return http::Response::text("no such admin endpoint", 404);
  }

  if (m == Method::kPost) {
    if (p != report_path_) return method_not_allowed("GET, HEAD");
    return oak_.handle(w.to_http(item.client_ip), item.admitted_at);
  }
  if (is_read) {
    return oak_.handle(w.to_http(item.client_ip), item.admitted_at);
  }
  return method_not_allowed("GET, HEAD, POST");  // PUT/DELETE off-admin
}

Server::CompletionItem Server::make_completion(
    std::uint64_t conn_id, const WireRequest& req,
    const http::Response& resp) const {
  const bool ka = req.keep_alive && !draining();
  const bool head = req.method && *req.method == http::Method::kHead;
  return CompletionItem{conn_id, serialize_response(resp, ka, head), ka,
                        resp.status};
}

std::string Server::serialize_response(const http::Response& resp,
                                       bool keep_alive, bool head_request) {
  std::string out;
  out.reserve(resp.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += http::status_reason(resp.status);
  out += "\r\n";
  for (const auto& [name, value] : resp.headers.entries()) {
    // Framing is owned here, whatever the handler set.
    if (iequal(name, "content-length") || iequal(name, "connection") ||
        iequal(name, "transfer-encoding")) {
      continue;
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(resp.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  if (!head_request) out += resp.body;
  return out;
}

}  // namespace oak::wire
