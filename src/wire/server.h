// oak::wire::Server — the real front door: a single-listener epoll
// HTTP/1.1 server feeding ShardedOakServer.
//
// Everything before this ran in-process through Fleet; this module is where
// Oak first faces a hostile byte stream and an open-loop arrival process —
// the two things that kill real ingest tiers. Architecture:
//
//   accept ──► epoll loop (1 thread) ──► dispatch queue ──► worker pool
//                 ▲   │  parse (RequestParser, hard caps)      │
//                 │   │  deadlines (TimerWheel)                │ ShardedOakServer::handle
//                 │   │  admission control / shedding          │ (existing combining
//                 │   ▼                                        ▼  ingest queue)
//               sockets ◄── completions (eventfd) ◄── serialized responses
//
// Robustness posture, in order of the failure modes it defends against:
//
//  * Hostile input: RequestParser enforces the framing caps and answers
//    every malformed request with a 4xx and a close — never a crash, never
//    a 5xx (bench/wire_fuzz gates this under ASan).
//  * Slowloris: a TimerWheel arms one deadline per connection — header
//    deadline while the head trickles in, idle deadline between keep-alive
//    requests, write deadline while a response drains. Expiry answers 408
//    (header) or just closes (idle/write).
//  * Overload: three shedding layers, all before work is admitted —
//    accept-time connection cap (immediate 503 + close), dispatch-queue
//    depth (503 + Retry-After), and ingest-queue backpressure
//    (ShardedOakServer::ingest_pressure() ≥ threshold → 503 + Retry-After
//    on report POSTs). Load the server cannot serve is refused in O(1)
//    instead of queueing into collapse (bench/load_wire's open-loop sweep
//    gates goodput under 2× overload).
//  * Shutdown: request_drain() (or SIGTERM via install_signal_drain) stops
//    accepting, lets in-flight requests finish within drain_deadline_s,
//    then runs on_drained (wired to a final snapshot/compaction). Admitted
//    reports are journaled under the shard lock before their 2xx is
//    written, so a drain — or even a force-close at the deadline — never
//    loses an acknowledged report.
//
// Routes:
//   POST <report_path>      report ingest (report_path from OakConfig)
//   GET  /...               page serving with rule modification
//   GET  /metrics           Prometheus text (oak_* + oak_wire_*)
//   GET  /metrics.json      JSON exposition
//   GET  /admin/health      liveness + drain state
//   GET  /admin/rules       rule set, rule-file format (core/rule_parser)
//   POST /admin/rules       append rules (rule-file body) → ids
//   PUT  /admin/rules       replace the rule set
//   DELETE /admin/rules/<id> retire one rule
//   POST /admin/compact     snapshot + journal truncation
// Unroutable methods answer 405 with an Allow header.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sharded_server.h"
#include "obs/metrics.h"
#include "wire/parser.h"
#include "wire/timer_wheel.h"

namespace oak::wire {

struct WireConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() after start()

  // Accept-time cap: connections beyond this are answered 503 and closed
  // without ever allocating parser state.
  std::size_t max_connections = 1024;
  std::size_t worker_threads = 4;
  // Parsed requests waiting for a worker before new ones are shed 503.
  std::size_t dispatch_depth = 256;
  // Shed report POSTs with 503 + Retry-After once the fullest shard's
  // ingest queue is this full (ShardedOakServer::ingest_pressure()).
  // ≥ 1.0 never sheds on backpressure; 0.0 always sheds (tests).
  double shed_pressure = 0.9;
  int retry_after_s = 1;

  ParserLimits limits;

  // Slowloris deadlines (seconds; ≤ 0 disables that deadline).
  double header_deadline_s = 5.0;  // accept/first-byte → complete head
  double idle_deadline_s = 30.0;   // keep-alive gap
  double write_deadline_s = 10.0;  // response flush
  double drain_deadline_s = 5.0;   // graceful-drain budget

  bool metrics = true;
};

class Server {
 public:
  Server(core::ShardedOakServer& oak, WireConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind, listen, spawn the event loop and workers. Throws
  // std::runtime_error on socket failures.
  void start();
  // The bound port (after start(); resolves port 0).
  std::uint16_t port() const { return bound_port_; }

  // Begin graceful drain: stop accepting, finish in-flight requests, then
  // run the on_drained callback and exit the loop. Thread-safe and
  // idempotent; also invoked by the SIGTERM handler.
  void request_drain();
  bool draining() const {
    return drain_flag_.load(std::memory_order_acquire);
  }

  // Wait for the loop and workers to exit (drain completes or the drain
  // deadline force-closes stragglers).
  void join();
  // request_drain() + join().
  void stop();

  // Route SIGTERM (or another signal) to request_drain() for this server.
  // One server per process may hold the handler; async-signal-safe.
  void install_signal_drain(int signo);

  // Runs exactly once, on the loop thread, after the last connection
  // closes (or the drain deadline fires) and the workers are joined —
  // the final-snapshot hook.
  void set_on_drained(std::function<void()> fn) {
    on_drained_ = std::move(fn);
  }

  // Wire-plane registry (oak_wire_*). The /metrics route merges this with
  // the Oak serving plane's snapshot.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }
  obs::MetricsSnapshot metrics_snapshot() const;

  const WireConfig& config() const { return cfg_; }

 private:
  struct Conn;
  struct DispatchItem {
    std::uint64_t conn_id = 0;
    WireRequest req;
    std::string client_ip;
    double admitted_at = 0.0;
  };
  struct CompletionItem {
    std::uint64_t conn_id = 0;
    std::string bytes;        // fully serialized response
    bool keep_alive = true;
    int status = 200;
  };

  void run();  // the epoll loop (loop thread)
  double now() const;

  // --- Loop-thread only.
  void handle_accept();
  void handle_conn_event(std::uint64_t id, std::uint32_t events);
  void read_conn(Conn& c);
  // Drive a connection forward: flush pending output, then parse and answer
  // pipelined requests until blocked on I/O, a worker, or closure.
  void pump(Conn& c);
  void begin_request(Conn& c);
  void respond_inline(Conn& c, int status, const std::string& body,
                      bool keep_alive,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers = {});
  void deliver(Conn& c, std::string bytes, bool keep_alive, int status);
  // Write until drained or EAGAIN; false on a fatal socket error.
  bool try_write(Conn& c);
  void finished_response(Conn& c);
  void on_deadline(std::uint64_t id);
  void close_conn(Conn& c);
  void arm_timer(Conn& c, int kind, double delay_s);
  void update_epoll(Conn& c, bool want_read, bool want_write);
  void drain_completions();
  void start_drain_loopside();
  bool drain_finished() const;

  // --- Worker threads.
  void worker_main();
  http::Response route(const DispatchItem& item);
  CompletionItem make_completion(std::uint64_t conn_id, const WireRequest& req,
                                 const http::Response& resp) const;

  static std::string serialize_response(const http::Response& resp,
                                        bool keep_alive, bool head_request);

  core::ShardedOakServer& oak_;
  WireConfig cfg_;
  std::string report_path_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;  // worker completions + drain wakeup
  std::uint16_t bound_port_ = 0;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> drain_flag_{false};
  bool drain_started_loopside_ = false;
  double drain_started_at_ = 0.0;
  bool loop_done_ = false;

  std::chrono::steady_clock::time_point epoch_;

  // Connections (loop thread only).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  // Ids 0 and 1 tag the listener and eventfd in epoll user data.
  std::uint64_t next_conn_id_ = 2;
  TimerWheel wheel_;

  // Dispatch queue: loop → workers.
  mutable std::mutex dmu_;
  std::condition_variable dcv_;
  std::deque<DispatchItem> dispatch_;
  bool workers_stop_ = false;
  std::size_t inflight_ = 0;  // items popped, completion not yet queued

  // Completion queue: workers → loop.
  mutable std::mutex cmu_;
  std::vector<CompletionItem> completions_;

  std::function<void()> on_drained_;

  // --- oak_wire_* instruments (null when cfg_.metrics is false).
  obs::MetricsRegistry metrics_;
  struct {
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* resp_2xx = nullptr;
    obs::Counter* resp_4xx = nullptr;
    obs::Counter* resp_5xx = nullptr;
    obs::Counter* parse_errors = nullptr;
    obs::Counter* shed_conns = nullptr;
    obs::Counter* shed_dispatch = nullptr;
    obs::Counter* shed_backpressure = nullptr;
    obs::Counter* timeout_header = nullptr;
    obs::Counter* timeout_idle = nullptr;
    obs::Counter* timeout_write = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Gauge* conns_active = nullptr;
    obs::Gauge* dispatch_depth = nullptr;
    obs::Gauge* draining = nullptr;
    obs::Histogram* request_seconds = nullptr;
  } obs_;
};

}  // namespace oak::wire
