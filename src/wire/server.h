// oak::wire::Server — the real front door: a multi-loop SO_REUSEPORT epoll
// HTTP/1.1 server feeding ShardedOakServer.
//
// Everything before this ran in-process through Fleet; this module is where
// Oak first faces a hostile byte stream and an open-loop arrival process —
// the two things that kill real ingest tiers. PR 8's single epoll loop
// saturated before the ingest shards did (BENCH_wire.json's 2x overload
// sweep), so the front-end now scales the C10K way: N event loops (default
// min(cores, shards), knob `loops`), each with its own SO_REUSEPORT
// listener, epoll set, TimerWheel and connection table, so the kernel
// spreads accepted connections across cores and no loop ever touches
// another loop's sockets. Architecture:
//
//   kernel SO_REUSEPORT hash
//     ├─► loop 0 ──┐  each loop: accept, parse (RequestParser, hard caps),
//     ├─► loop 1 ──┤  deadlines (per-loop TimerWheel), writev-batched IO
//     └─► loop N ──┘
//          │    │
//          │    └── report POSTs: shard-affine — hash the oak_uid (cookie
//          │        or minted) to its shard and run the request inline on
//          │        the loop thread through that shard's combining queue
//          │        (ShardedOakServer::handle_for_user), so a connection's
//          │        reports land on their shard with one hand-off instead
//          │        of loop → worker → completion cross-core bounces.
//          └────── pages/admin: shared dispatch queue ──► worker pool
//                    completions (per-loop eventfd) ◄── serialized responses
//
// Robustness posture, in order of the failure modes it defends against:
//
//  * Hostile input: RequestParser enforces the framing caps and answers
//    every malformed request with a 4xx and a close — never a crash, never
//    a 5xx (bench/wire_fuzz gates this under ASan, against a multi-loop
//    server).
//  * Slowloris: each loop's TimerWheel arms one deadline per connection —
//    header deadline while the head trickles in, idle deadline between
//    keep-alive requests, write deadline while a response drains. Expiry
//    answers 408 (header) or just closes (idle/write).
//  * Overload: three shedding layers, all before work is admitted —
//    accept-time connection cap across all loops (immediate 503 + close),
//    dispatch-queue depth (503 + Retry-After), and ingest-queue
//    backpressure (ShardedOakServer::ingest_pressure() ≥ threshold → 503 +
//    Retry-After on report POSTs). Load the server cannot serve is refused
//    in O(1) instead of queueing into collapse (bench/load_wire's open-loop
//    sweep gates goodput under 2× overload and the multi-loop knee).
//  * Shutdown: request_drain() (or SIGTERM via install_signal_drain) makes
//    every loop stop accepting, lets in-flight requests finish within
//    drain_deadline_s, then runs on_drained once all loops and workers have
//    exited (wired to a final snapshot/compaction). Admitted reports are
//    journaled under the shard lock before their 2xx is written, so a drain
//    — or even a force-close at the deadline — never loses an acknowledged
//    report, whichever loop owned the connection.
//
// Write path: responses are queued per connection and flushed with writev,
// so pipelined responses (and the inline report path's back-to-back 204s)
// coalesce into one syscall instead of one send() each.
//
// Routes:
//   POST <report_path>      report ingest (report_path from OakConfig)
//   GET  /...               page serving with rule modification
//   GET  /metrics           Prometheus text (oak_* + oak_wire_*)
//   GET  /metrics.json      JSON exposition
//   GET  /admin/health      liveness + drain state
//   GET  /admin/rules       rule set, rule-file format (core/rule_parser)
//   POST /admin/rules       append rules (rule-file body) → ids
//   PUT  /admin/rules       replace the rule set
//   DELETE /admin/rules/<id> retire one rule
//   POST /admin/compact     snapshot + journal truncation
// Unroutable methods answer 405 with an Allow header.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sharded_server.h"
#include "obs/metrics.h"
#include "wire/parser.h"
#include "wire/timer_wheel.h"

namespace oak::wire {

struct WireConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; Server::port() after start()

  // Event loops. 0 = min(hardware cores, oak shard count); each loop gets
  // its own SO_REUSEPORT listener and owns its connections end to end.
  std::size_t loops = 0;

  // Run report POSTs inline on the owning loop thread through the uid's
  // shard combining queue (shard-affine dispatch). Off = every request
  // takes the worker-pool path, as the PR-8 single-loop front-end did.
  bool affine_ingest = true;

  // Accept-time cap (across all loops): connections beyond this are
  // answered 503 and closed without ever allocating parser state.
  std::size_t max_connections = 1024;
  std::size_t worker_threads = 4;
  // Parsed requests waiting for a worker before new ones are shed 503.
  std::size_t dispatch_depth = 256;
  // Shed report POSTs with 503 + Retry-After once the fullest shard's
  // ingest queue is this full (ShardedOakServer::ingest_pressure()).
  // ≥ 1.0 never sheds on backpressure; 0.0 always sheds (tests).
  double shed_pressure = 0.9;
  int retry_after_s = 1;

  ParserLimits limits;

  // Slowloris deadlines (seconds; ≤ 0 disables that deadline).
  double header_deadline_s = 5.0;  // accept/first-byte → complete head
  double idle_deadline_s = 30.0;   // keep-alive gap
  double write_deadline_s = 10.0;  // response flush
  double drain_deadline_s = 5.0;   // graceful-drain budget

  bool metrics = true;
};

class Server {
 public:
  Server(core::ShardedOakServer& oak, WireConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind the SO_REUSEPORT listeners, spawn the event loops and workers.
  // Throws std::runtime_error on socket failures.
  void start();
  // The bound port (after start(); resolves port 0).
  std::uint16_t port() const { return bound_port_; }
  // Event loops actually running (after start(); resolves loops == 0).
  std::size_t loop_count() const { return loops_.size(); }

  // Begin graceful drain: every loop stops accepting, finishes in-flight
  // requests, then the on_drained callback runs and the loops exit.
  // Thread-safe and idempotent; also invoked by the SIGTERM handler.
  void request_drain();
  bool draining() const {
    return drain_flag_.load(std::memory_order_acquire);
  }

  // Wait for the loops and workers to exit (drain completes or the drain
  // deadline force-closes stragglers).
  void join();
  // request_drain() + join().
  void stop();

  // Route SIGTERM (or another signal) to request_drain() for this server.
  // One server per process may hold the handler; async-signal-safe.
  void install_signal_drain(int signo);

  // Runs exactly once, after the last loop exits (all connections closed
  // or the drain deadline fired) and the workers are joined — the
  // final-snapshot hook.
  void set_on_drained(std::function<void()> fn) {
    on_drained_ = std::move(fn);
  }

  // Wire-plane registry (oak_wire_*). The /metrics route merges this with
  // the Oak serving plane's snapshot.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }
  obs::MetricsSnapshot metrics_snapshot() const;

  const WireConfig& config() const { return cfg_; }

 private:
  struct Conn;
  struct Loop;
  struct DispatchItem {
    std::size_t loop_index = 0;
    std::uint64_t conn_id = 0;
    WireRequest req;
    std::string client_ip;
    double admitted_at = 0.0;
  };
  struct CompletionItem {
    std::uint64_t conn_id = 0;
    std::string bytes;        // fully serialized response
    bool keep_alive = true;
    int status = 200;
  };

  void run(Loop& lp);  // one epoll loop (its own thread)
  double now() const;

  // --- Loop-thread only (every member takes its owning Loop).
  int make_listener(bool reuse_port) const;
  void handle_accept(Loop& lp);
  void handle_conn_event(Loop& lp, std::uint64_t id, std::uint32_t events);
  void read_conn(Conn& c);
  // Drive a connection forward: parse and answer pipelined requests until
  // blocked, then flush the queued responses with writev.
  void pump(Conn& c);
  void begin_request(Conn& c);
  void respond_inline(Conn& c, int status, const std::string& body,
                      bool keep_alive,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers = {});
  void deliver(Conn& c, std::string bytes, bool keep_alive, int status);
  // writev until drained or EAGAIN; false on a fatal socket error.
  bool flush_out(Conn& c);
  void on_deadline(Loop& lp, std::uint64_t id);
  void close_conn(Conn& c);
  void arm_timer(Conn& c, int kind, double delay_s);
  void update_epoll(Conn& c, bool want_read, bool want_write);
  void drain_completions(Loop& lp);
  void start_drain_loopside(Loop& lp);
  bool drain_finished(const Loop& lp) const;
  // Shard-affine inline ingest: run the report POST on the loop thread
  // through its uid's shard. Returns false when the request is not an
  // affine-eligible report POST (caller falls back to the worker pool).
  bool try_affine_ingest(Conn& c, WireRequest& req);

  // --- Worker threads.
  void worker_main();
  http::Response route(const DispatchItem& item);
  CompletionItem make_completion(std::uint64_t conn_id, const WireRequest& req,
                                 const http::Response& resp) const;

  static std::string serialize_response(const http::Response& resp,
                                        bool keep_alive, bool head_request);

  core::ShardedOakServer& oak_;
  WireConfig cfg_;
  std::string report_path_;

  std::uint16_t bound_port_ = 0;
  int drain_event_fd_ = -1;  // shared drain wakeup (EPOLLONESHOT per loop)

  std::vector<std::unique_ptr<Loop>> loops_;
  std::thread coordinator_;  // joins loops, stops workers, runs on_drained
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> drain_flag_{false};
  // Connections across every loop, for the accept-time cap.
  std::atomic<std::size_t> total_conns_{0};

  std::chrono::steady_clock::time_point epoch_;

  // Dispatch queue: loops → workers (pages/admin; reports when
  // affine_ingest is off).
  mutable std::mutex dmu_;
  std::condition_variable dcv_;
  std::deque<DispatchItem> dispatch_;
  bool workers_stop_ = false;

  std::function<void()> on_drained_;

  // --- oak_wire_* instruments (null when cfg_.metrics is false). Shared
  // across loops: counters are relaxed atomics, so no loop owns them.
  obs::MetricsRegistry metrics_;
  struct {
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* resp_2xx = nullptr;
    obs::Counter* resp_4xx = nullptr;
    obs::Counter* resp_5xx = nullptr;
    obs::Counter* parse_errors = nullptr;
    obs::Counter* shed_conns = nullptr;
    obs::Counter* shed_dispatch = nullptr;
    obs::Counter* shed_backpressure = nullptr;
    obs::Counter* timeout_header = nullptr;
    obs::Counter* timeout_idle = nullptr;
    obs::Counter* timeout_write = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* affine_ingests = nullptr;
    obs::Counter* writev_calls = nullptr;
    obs::Counter* writev_bufs = nullptr;
    obs::Gauge* conns_active = nullptr;
    obs::Gauge* dispatch_depth = nullptr;
    obs::Gauge* draining = nullptr;
    obs::Gauge* loops = nullptr;
    obs::Histogram* request_seconds = nullptr;
  } obs_;
};

}  // namespace oak::wire
