// Minimal blocking HTTP/1.1 client for the wire tests and benches.
//
// Deliberately not a production client: it exists to poke the server with
// exact bytes (send_raw + shutdown_write for fuzzing truncations), to parse
// well-formed responses back (request/read_response for functional tests),
// and nothing else. One connection per instance; keep-alive reuse works by
// calling request() repeatedly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "http/headers.h"

namespace oak::wire {

struct ClientResponse {
  int status = 0;
  http::Headers headers;
  std::string body;
  bool keep_alive = true;
};

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  // Connect to host:port; false on failure. timeout_s bounds every
  // subsequent read (SO_RCVTIMEO) and write (SO_SNDTIMEO).
  bool connect(const std::string& host, std::uint16_t port,
               double timeout_s = 5.0);
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Send exact bytes; false once the peer has reset the connection.
  bool send_raw(std::string_view bytes);
  // Half-close: tells the server EOF so fuzz truncations resolve
  // immediately instead of waiting out the header deadline.
  void shutdown_write();

  // Parse one response off the socket (status line + headers +
  // Content-Length body; HEAD responses via read_response(true)).
  // nullopt on EOF/timeout/garbage.
  std::optional<ClientResponse> read_response(bool head_request = false);

  // Drain until EOF or timeout; returns whatever arrived (fuzz harness).
  std::string read_all();

  // Convenience: serialize a request (Host + Content-Length added), send,
  // read one response.
  std::optional<ClientResponse> request(
      const std::string& method, const std::string& target,
      const std::vector<std::pair<std::string, std::string>>& headers = {},
      const std::string& body = "");

  void close();

 private:
  // Buffered read of one byte chunk; false on EOF/timeout.
  bool fill();

  int fd_ = -1;
  std::string buf_;      // bytes read but not yet consumed
  std::size_t pos_ = 0;  // consume offset into buf_
};

}  // namespace oak::wire
