#include "wire/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace oak::wire {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& ch : out) {
    if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
  }
  return out;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Connection is a comma-separated token list (RFC 7230 §6.1); decide
// keep-alive by matching whole tokens case-insensitively, exactly as the
// server-side parser does. A substring test would read a token like
// "close-notify" — or any value merely containing the letters "close" —
// as a close directive.
bool parse_keep_alive(std::string_view value, bool current) {
  bool ka = current;
  std::string_view rest = value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string lc = lower(trim_ows(rest.substr(0, comma)));
    if (lc == "close") {
      ka = false;
    } else if (lc == "keep-alive") {
      ka = true;
    }
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return ka;
}

}  // namespace

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)), pos_(other.pos_) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    pos_ = other.pos_;
    other.fd_ = -1;
  }
  return *this;
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port,
                             double timeout_s) {
  close();
  // Numeric literals only (no DNS): a ':' in the host means IPv6.
  const bool v6 = host.find(':') != std::string::npos;
  fd_ = ::socket(v6 ? AF_INET6 : AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;

  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - double(tv.tv_sec)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  sockaddr_storage addr{};
  socklen_t alen = 0;
  if (v6) {
    auto* a6 = reinterpret_cast<sockaddr_in6*>(&addr);
    a6->sin6_family = AF_INET6;
    a6->sin6_port = htons(port);
    if (::inet_pton(AF_INET6, host.c_str(), &a6->sin6_addr) != 1) {
      close();
      return false;
    }
    alen = sizeof(sockaddr_in6);
  } else {
    auto* a4 = reinterpret_cast<sockaddr_in*>(&addr);
    a4->sin_family = AF_INET;
    a4->sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &a4->sin_addr) != 1) {
      close();
      return false;
    }
    alen = sizeof(sockaddr_in);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), alen) < 0) {
    close();
    return false;
  }
  buf_.clear();
  pos_ = 0;
  return true;
}

bool BlockingClient::send_raw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void BlockingClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool BlockingClient::fill() {
  char chunk[8 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, timeout, or reset
  }
}

std::optional<ClientResponse> BlockingClient::read_response(
    bool head_request) {
  // Accumulate the head.
  std::size_t head_end = std::string::npos;
  for (;;) {
    head_end = buf_.find("\r\n\r\n", pos_);
    if (head_end != std::string::npos) break;
    if (!fill()) return std::nullopt;
  }
  const std::string_view head =
      std::string_view(buf_).substr(pos_, head_end - pos_);

  ClientResponse resp;
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
    return std::nullopt;
  }
  resp.status = std::atoi(std::string(status_line.substr(9, 3)).c_str());

  std::size_t content_length = 0;
  std::size_t cursor =
      line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    std::size_t eol = head.find("\r\n", cursor);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name = lower(line.substr(0, colon));
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    resp.headers.add(name, value);
    if (name == "content-length") {
      content_length =
          static_cast<std::size_t>(std::atoll(std::string(value).c_str()));
    } else if (name == "connection") {
      resp.keep_alive = parse_keep_alive(value, resp.keep_alive);
    }
  }

  pos_ = head_end + 4;
  if (!head_request) {
    while (buf_.size() - pos_ < content_length) {
      if (!fill()) return std::nullopt;
    }
    resp.body = buf_.substr(pos_, content_length);
    pos_ += content_length;
  }
  // Compact the consume buffer between responses.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return resp;
}

std::string BlockingClient::read_all() {
  while (fill()) {
  }
  std::string out = buf_.substr(pos_);
  buf_.clear();
  pos_ = 0;
  return out;
}

std::optional<ClientResponse> BlockingClient::request(
    const std::string& method, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& body) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  bool has_host = false;
  for (const auto& [k, v] : headers) {
    if (lower(k) == "host") has_host = true;
    req += k + ": " + v + "\r\n";
  }
  if (!has_host) req += "Host: localhost\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n";
  req += body;
  if (!send_raw(req)) return std::nullopt;
  return read_response(method == "HEAD");
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  pos_ = 0;
}

}  // namespace oak::wire
