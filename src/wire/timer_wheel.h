// Hashed timer wheel for connection deadlines (slowloris defense).
//
// The wire front-end arms one deadline per connection at a time — header
// deadline while a request head trickles in, idle deadline between
// keep-alive requests, write deadline while a response drains. All three
// are coarse (hundreds of ms to tens of seconds), so a classic hashed
// wheel fits: O(1) schedule/cancel, and the epoll loop advances it once
// per tick. Precision is one tick (default 50 ms) — deadlines fire at most
// one tick late, never early.
//
// Single-threaded by design: owned and driven only by the event loop.
// Cancellation is generation-based — schedule() and cancel() bump the
// id's generation, and stale wheel entries are dropped lazily when their
// slot comes around, so neither operation touches the slot vectors.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace oak::wire {

class TimerWheel {
 public:
  explicit TimerWheel(double tick_s = 0.05, std::size_t slots = 256)
      : tick_s_(tick_s > 0 ? tick_s : 0.05),
        slots_(slots > 0 ? slots : 1) {
    wheel_.resize(slots_);
  }

  // Arm (or re-arm) the deadline for `id`. A previously scheduled entry
  // for the same id is invalidated.
  void schedule(std::uint64_t id, double deadline) {
    auto& st = state_[id];
    ++st.gen;
    st.deadline = deadline;
    // File at the first tick whose visit time is >= the deadline (ceil,
    // not floor): the cursor reaches tick T once now >= T*tick_s_, so a
    // floor-filed interior deadline would be visited before it is due and
    // re-filed a whole revolution out — up to slots-1 ticks late instead
    // of the promised one.
    std::int64_t tick = static_cast<std::int64_t>(
        std::ceil(deadline / tick_s_));
    // A deadline already in the past (loop lag) files into the next tick
    // to be visited, not a slot the cursor has moved beyond — otherwise it
    // would silently wait out a full wheel revolution.
    if (last_tick_ != std::numeric_limits<std::int64_t>::min() &&
        tick <= last_tick_) {
      tick = last_tick_ + 1;
    }
    wheel_[slot_index(tick)].push_back(Entry{id, st.gen, deadline});
  }

  void cancel(std::uint64_t id) { state_.erase(id); }

  bool armed(std::uint64_t id) const { return state_.count(id) != 0; }
  std::size_t armed_count() const { return state_.size(); }

  // Total entries filed across all slots, live or stale. Lazy cancellation
  // means this can exceed armed_count() between advances; after a full
  // revolution every stale entry has been visited and dropped, so tests use
  // this to assert re-arm churn doesn't accrete slot garbage.
  std::size_t slot_entries() const {
    std::size_t n = 0;
    for (const auto& slot : wheel_) n += slot.size();
    return n;
  }

  // Fire fn(id) for every live entry whose deadline is <= now. Entries that
  // were re-armed or cancelled are dropped; entries hashed into a visited
  // slot but not yet due (wheel wrap-around) are re-filed one revolution
  // out. `now` must be monotone across calls.
  template <typename Fn>
  std::size_t advance(double now, Fn&& fn) {
    std::size_t fired = 0;
    const std::int64_t now_tick = tick_of(now);
    if (last_tick_ == std::numeric_limits<std::int64_t>::min()) {
      last_tick_ = now_tick - 1;
    }
    // Visit at most one full revolution — beyond that every slot has been
    // examined once and re-filed entries must wait for their tick.
    const std::int64_t from = last_tick_ + 1;
    const std::int64_t to =
        std::min(now_tick, from + static_cast<std::int64_t>(slots_) - 1);
    for (std::int64_t t = from; t <= to; ++t) {
      auto& slot = wheel_[slot_index(t)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        Entry e = slot[i];
        auto it = state_.find(e.id);
        if (it == state_.end() || it->second.gen != e.gen) {
          continue;  // cancelled or re-armed: drop lazily
        }
        if (e.deadline <= now) {
          state_.erase(it);
          ++fired;
          fn(e.id);
        } else {
          slot[keep++] = e;  // wrapped: due on a later revolution
        }
      }
      slot.resize(keep);
    }
    last_tick_ = now_tick;
    return fired;
  }

  double tick_seconds() const { return tick_s_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t gen = 0;
    double deadline = 0.0;
  };
  struct IdState {
    std::uint64_t gen = 0;
    double deadline = 0.0;
  };

  std::int64_t tick_of(double t) const {
    return static_cast<std::int64_t>(t / tick_s_);
  }
  std::size_t slot_index(std::int64_t tick) const {
    const std::int64_t s = static_cast<std::int64_t>(slots_);
    return static_cast<std::size_t>(((tick % s) + s) % s);
  }

  double tick_s_;
  std::size_t slots_;
  std::vector<std::vector<Entry>> wheel_;
  std::unordered_map<std::uint64_t, IdState> state_;
  std::int64_t last_tick_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace oak::wire
